"""Trace-specialized replay codegen: compile one workload's stream.

The compiled kernel (:mod:`repro.pipeline.kernel`) replays a lowered
trace through one generic loop: every instruction pays a fused-code
fetch, a kernel-class dispatch chain and two dependence-array probes,
even though the committed stream is overwhelmingly made of a few hot
straight-line *runs* (maximal segments of consecutive PCs — loop bodies
and fall-through regions) whose static shape never changes.  This module
specializes the trace the way a tracing JIT lowers hot paths (PyPy's
metainterp compiling residual code for a hot trace): it decomposes the
stream into runs, picks the hottest run *shapes* by dynamic coverage,
and generates a Python module whose ``replay()`` function unrolls each
hot shape into straight-line code with the per-instruction interpretive
work burnt in at codegen time:

* the kernel class (ALU/load/store/... dispatch) becomes the emitted
  statement sequence — no ``codes[i]`` fetch, no ``k ==`` chain;
* I-cache line crossings inside a run are static (byte PCs are known),
  so only a run's *first* instruction checks the fused line-change bit;
* dependences on producers inside the same run become reads of the
  producer's ``c<j>`` local (the engine's renamed-register readiness,
  now a LOAD_FAST); absent sources cost nothing; only cross-run
  dependences still probe ``dep1``/``dep2``;
* memory/branch stream cursors advance by per-shape constants.

Cold shapes and the budget-truncated tail fall through to a generic
inner loop that is textually the kernel's — so any run the specializer
does not unroll executes the exact same arithmetic.  The generated
function returns ``(last_commit, commit_arr)`` and the wrapper routes
them through :func:`repro.pipeline.kernel.stream_result`, making
specialized results equal to ``kernel_run``'s **by construction** for
everything downstream of the timing loop; the timing loop itself is
gated bit-for-bit by ``tests/pipeline/test_specialize.py`` and
``python -m repro.bench``.

Generated modules are cached content-addressed next to the trace store
(``benchmarks/results/specialized/``, relocate with
``REPRO_KERNEL_SPEC_DIR``): the key hashes the committed PC stream, the
program identity, the I-cache line mask, the package source fingerprint
(:func:`repro.experiments.plan.code_fingerprint` — editing the
simulator or this generator strands stale modules under dead keys) and
``SPEC_VERSION``.  Every cached file carries a first-line SHA-256 of
its own body; a mismatch (bit-rot, hand edits, torn writes) is a cache
miss that regenerates — divergent code is never executed.  Selection is
the ``REPRO_KERNEL_SPEC`` knob (:func:`repro.experiments.tracing.
spec_mode`, default off), observable as ``kernel_source="specialized"``
in the run ledger.  See DESIGN.md §13.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import time
from collections import Counter
from types import SimpleNamespace

from repro import obs
from repro.faults import fsio
from repro.pipeline.caches import MemoryHierarchy
from repro.pipeline.config import MachineConfig
from repro.pipeline.functional import DEFAULT_MAX_INSTRUCTIONS
from repro.pipeline.kernel import (
    _STREAM_KINDS,
    KernelUnsupported,
    LoweredTrace,
    ensure_lowered,
    stream_result,
)
from repro.pipeline.trace import CommittedTrace, TraceError
from repro.isa.program import Program
from repro.pipeline.stats import SimulationResult
from repro.predictors.twolevel import LevelTwoKind

__all__ = [
    "SPEC_VERSION",
    "default_spec_dir",
    "generate_source",
    "spec_cache_key",
    "specialized_run",
]

#: Versions the generated-module layout; bumping it (or any source edit,
#: via the fingerprint) re-keys every cached module.
SPEC_VERSION = 1

# Shape-selection policy: unroll the hottest segment shapes by dynamic
# coverage (occurrences x length) within a fixed code-size budget, so
# generated modules stay small no matter how large the trace is.
# Everything else takes the generic loop.
_MAX_SHAPES = 32
_MAX_SHAPE_LEN = 160
_UNROLL_BUDGET = 2048
_MAX_MERGES = 64

# Kernel classes, mirrored from isa.decoded (baked as literals into the
# generated source, so the generated module imports nothing from repro).
_K_ALU, _K_OTHER, _K_LOAD, _K_STORE, _K_MULT, _K_DIV, _K_BRANCH = range(7)


def default_spec_dir() -> pathlib.Path:
    """``REPRO_KERNEL_SPEC_DIR`` or ``benchmarks/results/specialized``."""
    override = os.environ.get("REPRO_KERNEL_SPEC_DIR")
    if override:
        return pathlib.Path(override)
    root = pathlib.Path(__file__).resolve().parents[3]
    if not (root / "pyproject.toml").is_file():
        root = pathlib.Path.cwd()
    return root / "benchmarks" / "results" / "specialized"


def _shape_length(shape: tuple) -> int:
    return sum(length for _pc, length in shape)


class _Decomposition:
    """Segment decomposition of one committed stream (config-free).

    The stream splits into *runs* (maximal consecutive-PC segments);
    because a trace is overwhelmingly loops, the run-shape sequence
    itself repeats, so adjacent runs are greedily pair-merged
    (byte-pair encoding over the shape string, the way a tracing JIT
    grows a residual trace past basic-block boundaries) into
    *segments* that cover whole loop iterations.  Merging is what makes
    specialization pay: a segment's interior I-cache line changes and
    cross-run dependences become static, and the per-segment dispatch
    cost amortizes over many instructions.

    ``run_bases[r]:run_ends[r]`` is the r-th segment's contiguous
    stream-index range; ``run_shapes[r]`` is the selected shape's
    dispatch id or ``-1`` (generic); ``shapes`` lists the selected
    keys — each a tuple of ``(start_pc, length)`` member runs —
    ordered by *occurrence count* so the generated dispatch chain
    tests the most common shape first.
    """

    __slots__ = ("run_bases", "run_ends", "run_shapes", "shapes")

    def __init__(self, lowered: LoweredTrace) -> None:
        pcs = lowered.pcs
        n = lowered.length
        bases: list[int] = []
        ends: list[int] = []
        keys: list[tuple] = []
        i = 0
        while i < n:
            base = i
            pc = pcs[i]
            i += 1
            while i < n and pcs[i] == pcs[i - 1] + 1:
                i += 1
            bases.append(base)
            ends.append(i)
            keys.append(((pc, i - base),))

        # Byte-pair merge rounds: fold the most frequent adjacent
        # shape pair into one segment shape until nothing hot is left.
        for _round in range(_MAX_MERGES):
            floor = max(4, len(keys) // 256)
            pair_counts: Counter = Counter()
            for pair in zip(keys, keys[1:]):
                pair_counts[pair] += 1
            best = None
            best_count = 0
            for pair, count in pair_counts.items():
                if count < floor or count < best_count:
                    continue
                if _shape_length(pair[0]) + _shape_length(pair[1]) \
                        > _MAX_SHAPE_LEN:
                    continue
                if count > best_count or (count == best_count
                                          and pair < best):
                    best = pair
                    best_count = count
            if best is None:
                break
            merged = best[0] + best[1]
            new_keys: list[tuple] = []
            new_bases: list[int] = []
            new_ends: list[int] = []
            i = 0
            last = len(keys) - 1
            while i < len(keys):
                if i < last and (keys[i], keys[i + 1]) == best:
                    new_keys.append(merged)
                    new_bases.append(bases[i])
                    new_ends.append(ends[i + 1])
                    i += 2
                else:
                    new_keys.append(keys[i])
                    new_bases.append(bases[i])
                    new_ends.append(ends[i])
                    i += 1
            keys, bases, ends = new_keys, new_bases, new_ends

        counts = Counter(keys)
        # Select by coverage (ties broken deterministically by key) ...
        ranked = sorted(counts.items(),
                        key=lambda kv: (-kv[1] * _shape_length(kv[0]),
                                        kv[0]))
        floor = n // 1000
        selected: list[tuple] = []
        budget = _UNROLL_BUDGET
        for key, count in ranked:
            if len(selected) >= _MAX_SHAPES:
                break
            length = _shape_length(key)
            if count * length < floor:
                break  # ranked by coverage: everything below is colder
            if length > budget:
                continue
            selected.append(key)
            budget -= length
        # ... but dispatch by frequency: the if/elif chain in the
        # generated module is walked once per segment, so the most
        # *common* shape must match first regardless of its length.
        selected.sort(key=lambda key: (-counts[key], key))
        shape_id = {key: s for s, key in enumerate(selected)}
        ids = [shape_id.get(key, -1) for key in keys]
        # Coalesce consecutive generic runs into one stretch each: the
        # generic arm loops over a whole index range anyway, so cold
        # regions pay the per-segment dispatch scaffold once per *gap*
        # rather than once per run.
        run_bases: list[int] = []
        run_ends: list[int] = []
        run_shapes: list[int] = []
        for base, end, sid in zip(bases, ends, ids):
            if sid < 0 and run_shapes and run_shapes[-1] < 0 \
                    and run_ends[-1] == base:
                run_ends[-1] = end
            else:
                run_bases.append(base)
                run_ends.append(end)
                run_shapes.append(sid)
        self.run_bases = run_bases
        self.run_ends = run_ends
        self.run_shapes = run_shapes
        self.shapes = selected


def _select_lines(prefix: str, k: int, ready: str, out: str) -> list[str]:
    """Unit-occupancy server selection (the kernel's heappop/heappush).

    The kernel models a k-server FU as a min-heap of free times, but
    every operation reads *only* the minimum and replaces it — heap
    order never observably matters, so for small k an if/elif argmin
    over scalar locals is bit-equivalent and saves two C calls per
    instruction (the hottest single cost in the kernel loop).  Larger
    k (non-standard configs) keeps the heap.
    """
    if 1 <= k <= 4:
        names = [f"{prefix}{s}" for s in range(k)]
        lines: list[str] = []
        pad = "    " if k > 1 else ""
        for s, name in enumerate(names):
            rest = names[s + 1:]
            if rest:
                cond = " and ".join(f"{name} <= {other}" for other in rest)
                lines.append(f"{'if' if s == 0 else 'elif'} {cond}:")
            elif k > 1:
                lines.append("else:")
            lines.append(f"{pad}{out} = {ready} if {ready} >= {name} "
                         f"else {name}")
            lines.append(f"{pad}{name} = {out} + 1")
        return lines
    return [
        f"server_free = heappop({prefix}_free)",
        f"{out} = {ready} if {ready} >= server_free else server_free",
        f"heappush({prefix}_free, {out} + 1)",
    ]


def _server_init_lines(prefix: str, k: int) -> list[str]:
    if 1 <= k <= 4:
        chain = " = ".join(f"{prefix}{s}" for s in range(k))
        return [f"{chain} = 0"]
    return [f"{prefix}_free = [0] * {k}"]


def _ifetch_lines(bpc, geom: tuple) -> list[str]:
    """I-side memory access at a line change, hit path inlined.

    The hierarchy call (``instruction_latency`` → ``_access`` → TLB +
    L1I methods) costs four frames and LRU bookkeeping per line change;
    the overwhelmingly common case — ITLB hit and L1I hit — adds zero
    cycles (``extra`` is the latency beyond the baked hit latency).  So
    probe both LRU dicts inline and only fall back to the real method
    on any miss, pre-decrementing the ticks the fast path claimed so
    the method replays the access with identical tick numbers (LRU
    recency and statistics stay bit-identical).  ``bpc`` is either a
    literal byte PC (unrolled sites: set index and tag fold to
    constants) or an expression.
    """
    its, itn, l1s, l1n = geom[0], geom[1], geom[2], geom[3]
    lines = [
        "itlb._tick = t_tick = itlb._tick + 1",
        "l1i._tick = c_tick = l1i._tick + 1",
    ]
    if isinstance(bpc, int):
        page, line = bpc >> its, bpc >> l1s
        tset = f"itlb_sets[{page % itn}]"
        cset = f"l1i_sets[{line % l1n}]"
        ptag, ctag = str(page // itn), str(line // l1n)
        addr = str(bpc)
    else:
        lines += [
            f"a = {bpc}",
            f"page = a >> {its}",
            f"line = a >> {l1s}",
            f"ptag = page // {itn}",
            f"ctag = line // {l1n}",
        ]
        tset = f"itlb_sets[page % {itn}]"
        cset = f"l1i_sets[line % {l1n}]"
        ptag, ctag = "ptag", "ctag"
        addr = "a"
    lines += [
        f"tset = {tset}",
        f"cset = {cset}",
        f"if {ptag} in tset and {ctag} in cset:",
        f"    tset[{ptag}] = t_tick",
        f"    cset[{ctag}] = c_tick",
        "    itlb.hits += 1",
        "    l1i.hits += 1",
        "else:",
        "    itlb._tick -= 1",
        "    l1i._tick -= 1",
        f"    extra = mem_ilat({addr}) - icache_hit_latency",
        "    if extra > 0:",
        "        earliest += extra",
    ]
    return lines


def _dload_lines(addr_expr: str, out: str, geom: tuple) -> list[str]:
    """D-side access for a non-forwarded load, hit path inlined.

    Same scheme as :func:`_ifetch_lines` for DTLB + L1D: a double hit
    completes at ``access`` plus the L1D hit latency with two dict
    probes; anything else falls back to ``data_latency`` with the
    claimed ticks returned (the shared L2 is only ever touched by the
    fallback, in the same access order as the kernel's).
    """
    dts, dtn, lds, ldn = geom[4], geom[5], geom[6], geom[7]
    return [
        f"a = {addr_expr}",
        "dtlb._tick = t_tick = dtlb._tick + 1",
        "l1d._tick = c_tick = l1d._tick + 1",
        f"page = a >> {dts}",
        f"line = a >> {lds}",
        f"ptag = page // {dtn}",
        f"ctag = line // {ldn}",
        f"tset = dtlb_sets[page % {dtn}]",
        f"cset = l1d_sets[line % {ldn}]",
        "if ptag in tset and ctag in cset:",
        "    tset[ptag] = t_tick",
        "    cset[ctag] = c_tick",
        "    dtlb.hits += 1",
        "    l1d.hits += 1",
        f"    {out} = access + l1d_hit_lat",
        "else:",
        "    dtlb._tick -= 1",
        "    l1d._tick -= 1",
        f"    {out} = access + mem_dlat(a)",
    ]


# The generic inner loop over index ``i`` — textually the kernel stream
# loop's body (kernel classes as literals) with the server heaps
# argmin-inlined: cold shapes and the budget-truncated tail run the
# exact kernel arithmetic.
_GENERIC_PRE = """\
code = codes[i]
k = code & 7
earliest = fetch_barrier
if i >= rob_capacity:
    free_at = commit_arr[i - rob_capacity] + 1
    if free_at > earliest:
        earliest = free_at
if k == 2 or k == 3:
    if mem_i >= lsq_capacity:
        free_at = commit_arr[mem_pos[mem_i - lsq_capacity]] + 1
        if free_at > earliest:
            earliest = free_at"""

_GENERIC_MID = """\
if earliest > fetch_cycle:
    fetch_cycle = earliest
    fetch_used = 0
if fetch_used >= fetch_width:
    fetch_cycle += 1
    fetch_used = 0
fetch_used += 1
ready = fetch_cycle + frontend_depth
dep = dep1[i]
if dep >= 0:
    when = complete_arr[dep]
    if when > ready:
        ready = when
dep = dep2[i]
if dep >= 0:
    when = complete_arr[dep]
    if when > ready:
        ready = when"""

_GENERIC_POST = """\
commit_req = complete + 1
if commit_req < last_commit:
    commit_req = last_commit
if commit_req > commit_cycle:
    commit_cycle = commit_req
    commit_used = 0
if commit_used >= commit_width:
    commit_cycle += 1
    commit_used = 0
commit_used += 1
last_commit = commit_cycle
commit_arr[i] = last_commit
complete_arr[i] = complete
if k == 6:
    if branch_bad[branch_i]:
        barrier = complete + 1
        if barrier > fetch_barrier:
            fetch_barrier = barrier
    elif branch_override[branch_i]:
        barrier = fetch_cycle + override_redirect
        if barrier > fetch_barrier:
            fetch_barrier = barrier
    branch_i += 1"""


def _generic_lines(n_alus: int, n_ports: int, geom: tuple) -> list[str]:
    """The generic per-instruction body for the baked constants."""
    lines = _GENERIC_PRE.splitlines()
    a = lines.append

    def splice(block: list[str], pad: str) -> None:
        for line in block:
            a(pad + line)

    def select(prefix: str, k: int, ready: str, out: str) -> None:
        splice(_select_lines(prefix, k, ready, out), "    ")

    a("if code & 8:")
    splice(_ifetch_lines("byte_pcs[i]", geom), "    ")
    lines.extend(_GENERIC_MID.splitlines())
    a("if k == 0 or k == 6:")
    select("alu", n_alus, "ready", "issue")
    a("    complete = issue + alu_latency")
    a("elif k == 2:")
    select("alu", n_alus, "ready", "issue")
    a("    agen1 = issue + 1")
    select("dc", n_ports, "agen1", "access")
    a("    source = store_dep[mem_i]")
    a("    if source >= 0 and commit_arr[source] > access:")
    a("        data_ready = complete_arr[source]")
    a("        complete = (access if access >= data_ready "
      "else data_ready) + 1")
    a("    else:")
    splice(_dload_lines("mem_addr[mem_i]", "complete", geom), "        ")
    a("    mem_i += 1")
    a("elif k == 3:")
    select("alu", n_alus, "ready", "issue")
    a("    complete = issue + 1")
    a("    mem_i += 1")
    a("elif k == 1:")
    select("alu", n_alus, "ready", "issue")
    a("    complete = issue + 1")
    a("elif k == 4:")
    a("    if muldiv_scalar:")
    a("        issue = ready if ready >= muldiv_free else muldiv_free")
    a("        muldiv_free = issue + 1")
    a("    else:")
    a("        server_free = heappop(muldiv_heap)")
    a("        issue = ready if ready >= server_free else server_free")
    a("        heappush(muldiv_heap, issue + 1)")
    a("    complete = issue + mult_latency")
    a("else:")
    a("    if muldiv_scalar:")
    a("        issue = ready if ready >= muldiv_free else muldiv_free")
    a("        muldiv_free = issue + div_latency")
    a("    else:")
    a("        server_free = heappop(muldiv_heap)")
    a("        issue = ready if ready >= server_free else server_free")
    a("        heappush(muldiv_heap, issue + div_latency)")
    a("    complete = issue + div_latency")
    lines.extend(_GENERIC_POST.splitlines())
    return lines


def _emit_generic(out: list[str], indent: str, glines: list[str]) -> None:
    for line in glines:
        out.append(indent + line if line else "")


def _emit_shape(out: list[str], indent: str, shape: tuple,
                cls_tab, src1_tab, src2_tab, wr_tab, line_mask: int,
                n_alus: int, n_ports: int, geom: tuple) -> None:
    """Emit the straight-line block for one segment shape.

    ``shape`` is a tuple of ``(start_pc, length)`` member runs covering
    a contiguous stream-index range.  Index arithmetic uses ``base``
    (the segment's stream position) plus the line offset; the
    memory/branch cursors advance by constants and are bumped once at
    the end of the block.  ``writers`` tracks which line of *this*
    segment last wrote each register, so dependences on in-segment
    producers read the producer's ``c<j>`` local — exactly what
    ``dep1``/``dep2`` resolve to for these indices (same static tables,
    same stream order), just without the array probes.  Only the
    segment's first instruction probes the fused line-change bit (it
    depends on the previous segment's last fetch line); every interior
    line crossing — including at member-run heads — is static.
    """
    w = out.append
    mem_c = 0
    branch_c = 0
    writers: dict[int, int] = {}
    pc_seq: list[int] = []
    for start_pc, length in shape:
        pc_seq.extend(range(start_pc, start_pc + length))
    def select(prefix: str, k: int, ready: str, out_var: str) -> None:
        for line in _select_lines(prefix, k, ready, out_var):
            w(indent + line)

    def splice(block: list[str], pad: str = "") -> None:
        for line in block:
            w(indent + pad + line)

    for j, pc in enumerate(pc_seq):
        k = cls_tab[pc]
        byte_pc = pc * 4
        w(f"{indent}# pc {pc} (+{j})")
        if j:
            # Hoist the stream index once: it feeds the ROB guard, the
            # commit/complete writes and any cross-segment dep probes.
            idx = "bi"
            w(f"{indent}bi = base + {j}")
        else:
            idx = "base"
        # ---- fetch --------------------------------------------------
        w(f"{indent}earliest = fetch_barrier")
        w(f"{indent}if {idx} >= rob_capacity:")
        w(f"{indent}    free_at = commit_arr[{idx} - rob_capacity] + 1")
        w(f"{indent}    if free_at > earliest:")
        w(f"{indent}        earliest = free_at")
        if k == _K_LOAD or k == _K_STORE:
            mexp = f"mem_i + {mem_c}" if mem_c else "mem_i"
            w(f"{indent}if {mexp} >= lsq_capacity:")
            w(f"{indent}    free_at = "
              f"commit_arr[mem_pos[{mexp} - lsq_capacity]] + 1")
            w(f"{indent}    if free_at > earliest:")
            w(f"{indent}        earliest = free_at")
        if j == 0:
            # The segment head's line-change bit depends on the
            # previous segment's last fetch line — the block's only
            # codes[] probe.
            w(f"{indent}if codes[base] & 8:")
            splice(_ifetch_lines(byte_pc, geom), "    ")
        elif (byte_pc & line_mask) != ((pc_seq[j - 1] * 4) & line_mask):
            splice(_ifetch_lines(byte_pc, geom))
        w(f"{indent}if earliest > fetch_cycle:")
        w(f"{indent}    fetch_cycle = earliest")
        w(f"{indent}    fetch_used = 0")
        w(f"{indent}if fetch_used >= fetch_width:")
        w(f"{indent}    fetch_cycle += 1")
        w(f"{indent}    fetch_used = 0")
        w(f"{indent}fetch_used += 1")
        # ---- operand readiness -------------------------------------
        w(f"{indent}ready = fetch_cycle + frontend_depth")
        seen_regs: set[int] = set()
        for src, dep_arr in ((src1_tab[pc], "dep1"), (src2_tab[pc], "dep2")):
            if src < 0 or src in seen_regs:
                continue
            seen_regs.add(src)
            producer = writers.get(src)
            if producer is not None:
                w(f"{indent}if c{producer} > ready:")
                w(f"{indent}    ready = c{producer}")
            else:
                w(f"{indent}dep = {dep_arr}[{idx}]")
                w(f"{indent}if dep >= 0:")
                w(f"{indent}    when = complete_arr[dep]")
                w(f"{indent}    if when > ready:")
                w(f"{indent}        ready = when")
        # ---- execute ------------------------------------------------
        cj = f"c{j}"
        if k == _K_ALU or k == _K_BRANCH:
            select("alu", n_alus, "ready", "issue")
            w(f"{indent}{cj} = issue + alu_latency")
        elif k == _K_LOAD:
            mexp = f"mem_i + {mem_c}" if mem_c else "mem_i"
            select("alu", n_alus, "ready", "issue")
            w(f"{indent}agen1 = issue + 1")
            select("dc", n_ports, "agen1", "access")
            w(f"{indent}source = store_dep[{mexp}]")
            w(f"{indent}if source >= 0 and commit_arr[source] > access:")
            w(f"{indent}    data_ready = complete_arr[source]")
            w(f"{indent}    {cj} = (access if access >= data_ready "
              "else data_ready) + 1")
            w(f"{indent}else:")
            splice(_dload_lines(f"mem_addr[{mexp}]", cj, geom), "    ")
        elif k == _K_STORE or k == _K_OTHER:
            select("alu", n_alus, "ready", "issue")
            w(f"{indent}{cj} = issue + 1")
        else:  # _K_MULT / _K_DIV
            occupy = "1" if k == _K_MULT else "div_latency"
            latency = "mult_latency" if k == _K_MULT else "div_latency"
            w(f"{indent}if muldiv_scalar:")
            w(f"{indent}    issue = ready if ready >= muldiv_free "
              "else muldiv_free")
            w(f"{indent}    muldiv_free = issue + {occupy}")
            w(f"{indent}else:")
            w(f"{indent}    server_free = heappop(muldiv_heap)")
            w(f"{indent}    issue = ready if ready >= server_free "
              "else server_free")
            w(f"{indent}    heappush(muldiv_heap, issue + {occupy})")
            w(f"{indent}{cj} = issue + {latency}")
        # ---- commit -------------------------------------------------
        w(f"{indent}commit_req = {cj} + 1")
        w(f"{indent}if commit_req < last_commit:")
        w(f"{indent}    commit_req = last_commit")
        w(f"{indent}if commit_req > commit_cycle:")
        w(f"{indent}    commit_cycle = commit_req")
        w(f"{indent}    commit_used = 0")
        w(f"{indent}if commit_used >= commit_width:")
        w(f"{indent}    commit_cycle += 1")
        w(f"{indent}    commit_used = 0")
        w(f"{indent}commit_used += 1")
        w(f"{indent}last_commit = commit_cycle")
        w(f"{indent}commit_arr[{idx}] = last_commit")
        w(f"{indent}complete_arr[{idx}] = {cj}")
        # ---- control flow resolution --------------------------------
        if k == _K_BRANCH:
            bexp = f"branch_i + {branch_c}" if branch_c else "branch_i"
            w(f"{indent}if branch_bad[{bexp}]:")
            w(f"{indent}    barrier = {cj} + 1")
            w(f"{indent}    if barrier > fetch_barrier:")
            w(f"{indent}        fetch_barrier = barrier")
            w(f"{indent}elif branch_override[{bexp}]:")
            w(f"{indent}    barrier = fetch_cycle + override_redirect")
            w(f"{indent}    if barrier > fetch_barrier:")
            w(f"{indent}        fetch_barrier = barrier")
            branch_c += 1
        if k == _K_LOAD or k == _K_STORE:
            mem_c += 1
        dest = wr_tab[pc]
        if dest >= 0:
            writers[dest] = j
    if mem_c:
        w(f"{indent}mem_i += {mem_c}")
    if branch_c:
        w(f"{indent}branch_i += {branch_c}")


def generate_source(lowered: LoweredTrace, decomp: _Decomposition,
                    line_mask: int, n_alus: int, n_ports: int,
                    geom: tuple) -> str:
    """Generate the specialized module's source text (deterministic)."""
    program = lowered.program
    cls_tab, src1_tab, src2_tab, wr_tab, _ras, _hasres = \
        program.decoded().static_columns()
    glines = _generic_lines(n_alus, n_ports, geom)
    out: list[str] = []
    w = out.append
    w(f"# Trace-specialized replay of {program.name!r} "
      f"(spec v{SPEC_VERSION}, line mask {line_mask & 0xFFFFFFFF:#x}, "
      f"{n_alus} ALUs, {n_ports} D-cache ports, geometry {geom}).")
    w("# Generated by repro.pipeline.specialize; do not edit -- the")
    w("# loader verifies the first-line checksum and regenerates.")
    w("from heapq import heappop, heappush")
    w("")
    w(f"LINE_MASK = {line_mask}")
    w(f"PROGRAM = {program.name!r}")
    w(f"SERVERS = ({n_alus}, {n_ports})")
    w(f"GEOMETRY = {geom!r}")
    w(f"SHAPES = {decomp.shapes!r}")
    w("")
    w("")
    w("def replay(n_run, codes, byte_pcs, dep1, dep2, mem_pos, mem_addr,")
    w("           store_dep, branch_bad, branch_override,")
    w("           run_bases, run_ends, run_shapes,")
    w("           memory, icache_hit_latency, frontend_depth,")
    w("           fetch_width, commit_width, rob_capacity, lsq_capacity,")
    w("           alu_latency, mult_latency, div_latency,")
    w("           override_redirect, muldiv_scalar, n_muldiv):")
    w("    # Memory hierarchy unpacked for the inline hit fast paths;")
    w("    # misses fall back to the bound methods (shared L2, LRU")
    w("    # eviction) against the same objects.")
    w("    itlb = memory.itlb")
    w("    l1i = memory.l1i")
    w("    dtlb = memory.dtlb")
    w("    l1d = memory.l1d")
    w("    itlb_sets = itlb._sets")
    w("    l1i_sets = l1i._sets")
    w("    dtlb_sets = dtlb._sets")
    w("    l1d_sets = l1d._sets")
    w("    l1d_hit_lat = l1d.hit_latency")
    w("    mem_ilat = memory.instruction_latency")
    w("    mem_dlat = memory.data_latency")
    w("    complete_arr = [0] * n_run")
    w("    commit_arr = [0] * n_run")
    for line in _server_init_lines("alu", n_alus):
        w("    " + line)
    for line in _server_init_lines("dc", n_ports):
        w("    " + line)
    w("    muldiv_free = 0")
    w("    muldiv_heap = [0] * n_muldiv")
    w("    fetch_barrier = 0")
    w("    fetch_cycle = fetch_used = 0")
    w("    commit_cycle = commit_used = 0")
    w("    last_commit = 0")
    w("    mem_i = 0")
    w("    branch_i = 0")
    w("    n_runs = len(run_bases)")
    w("    r = 0")
    w("    while r < n_runs:")
    w("        end = run_ends[r]")
    w("        if end > n_run:")
    w("            break  # budget-truncated tail: generic loop below")
    w("        base = run_bases[r]")
    if decomp.shapes:
        # Each arm advances r itself and loops while the *same* shape
        # recurs back-to-back (loop iterations usually do), skipping
        # the dispatch chain for the repeats.
        w("        shape = run_shapes[r]")
        for s, shape in enumerate(decomp.shapes):
            branch = "if" if s == 0 else "elif"
            runs_txt = " ".join(f"{pc}+{length}" for pc, length in shape)
            w(f"        {branch} shape == {s}:  # runs {runs_txt}")
            w("            while True:")
            _emit_shape(out, " " * 16, shape,
                        cls_tab, src1_tab, src2_tab, wr_tab, line_mask,
                        n_alus, n_ports, geom)
            w("                r += 1")
            w(f"                if r >= n_runs or run_shapes[r] != {s}:")
            w("                    break")
            w("                end = run_ends[r]")
            w("                if end > n_run:")
            w("                    break")
            w("                base = run_bases[r]")
        w("        else:")
        w("            i = base")
        w("            while i < end:")
        _emit_generic(out, " " * 16, glines)
        w("                i += 1")
        w("            r += 1")
    else:
        w("        i = base")
        w("        while i < end:")
        _emit_generic(out, " " * 12, glines)
        w("            i += 1")
        w("        r += 1")
    w("    i = run_bases[r] if r < n_runs else n_run")
    w("    while i < n_run:")
    _emit_generic(out, " " * 8, glines)
    w("        i += 1")
    w("    return last_commit, commit_arr")
    w("")
    return "\n".join(out)


def spec_cache_key(lowered: LoweredTrace, line_mask: int,
                   n_alus: int, n_ports: int, geom: tuple) -> str:
    """Content hash addressing one generated module on disk.

    Covers everything the generated source is a function of: the
    committed PC stream (runs, shapes, baked byte PCs), the program
    identity, the I-cache line mask (baked line-change statics), the
    server counts (argmin-inlined FU selection), the TLB/L1 geometry
    (baked set indices and tags in the memory fast paths), the package
    source fingerprint (static decode tables *and* this generator
    itself) and ``SPEC_VERSION`` — so simulator edits, new recordings
    and layout changes all strand stale modules under dead keys instead
    of replaying them.
    """
    # Imported lazily: the fingerprint lives in the experiments layer,
    # which pipeline modules must not need at import time.
    from repro.experiments.plan import code_fingerprint
    digest = hashlib.sha256()
    digest.update(f"repro-specialized-v{SPEC_VERSION}\n".encode())
    digest.update(code_fingerprint().encode())
    digest.update(f"{lowered.program.name}\n{line_mask}\n"
                  f"{n_alus}:{n_ports}:{geom}\n"
                  f"{lowered.length}\n".encode())
    digest.update(lowered.trace.pcs.tobytes())
    return digest.hexdigest()


def _warm(fn) -> None:
    """Run the compiled ``replay`` past the interpreter's warmup gate.

    CPython 3.11 only quickens a code object (rewrites its bytecode to
    the adaptive forms that then specialize) after ``8`` calls; a tight
    loop like ``kernel_run``'s warms within its first call via loop
    backedges, but the generated function re-enters once per replay and
    would otherwise run its first seven replays ~45% slower on cold
    bytecode.  Eight zero-instruction calls (``n_run=0``: every loop
    exits immediately) cost microseconds and cross the gate up front.
    """
    empty: list = []
    stub = SimpleNamespace(_sets=empty, _tick=0, hits=0, misses=0,
                           hit_latency=1)
    memory = SimpleNamespace(itlb=stub, l1i=stub, dtlb=stub, l1d=stub,
                             instruction_latency=None, data_latency=None)
    for _ in range(8):
        fn(0, empty, empty, empty, empty, empty, empty, empty, empty,
           empty, empty, empty, empty, memory, 1, 1, 1, 1, 1, 1, 1, 1,
           1, 1, False, 1)


def _checksum_header(body: str) -> str:
    return "# sha256=" + hashlib.sha256(body.encode()).hexdigest()


def _load_cached(path: pathlib.Path):
    """Load a cached module; any malformed/mangled file is a miss.

    The first line must be the SHA-256 of the remainder: a file that
    was corrupted, torn or hand-edited fails the check and is
    regenerated — unverified content is never compiled or executed.
    """
    try:
        text = path.read_text()
    except (OSError, UnicodeDecodeError):
        return None
    newline = text.find("\n")
    if newline < 0:
        return None
    header, body = text[:newline], text[newline + 1:]
    if header != _checksum_header(body):
        return None
    try:
        code = compile(body, str(path), "exec")
    except (SyntaxError, ValueError):
        return None
    namespace: dict = {}
    exec(code, namespace)
    fn = namespace.get("replay")
    return fn if callable(fn) else None


def _replay_fn(lowered: LoweredTrace, line_mask: int,
               n_alus: int, n_ports: int, geom: tuple,
               spec_dir: "str | os.PathLike | None",
               phase_seconds: "dict | None" = None):
    """The compiled ``replay`` for one (trace, baked constants).

    In-memory the function is cached on the lowered trace (one codegen
    per workload per batch, like the lowering itself); on disk the
    source is content-addressed under :func:`spec_cache_key` so later
    processes skip the codegen cost and only pay ``compile()``.  A
    codegen that actually runs is its own ``phase="codegen"`` ledger
    span, and its wall clock lands in ``phase_seconds["codegen"]`` when
    the caller passes the dict (the bench harness reads it).
    """
    spec = lowered._specialized
    if spec is None:
        spec = lowered._specialized = {"decomp": _Decomposition(lowered)}
    decomp = spec["decomp"]
    mem_key = (line_mask, n_alus, n_ports, geom)
    fn = spec.get(mem_key)
    if fn is not None:
        return fn, decomp
    directory = pathlib.Path(spec_dir) if spec_dir is not None \
        else default_spec_dir()
    key = spec_cache_key(lowered, line_mask, n_alus, n_ports, geom)
    path = directory / f"{key}.py"
    fn = _load_cached(path)
    if fn is None:
        start = time.perf_counter()
        with obs.span("codegen", kind="phase", attrs={
                "phase": "codegen",
                "benchmark": lowered.program.name}):
            source = generate_source(lowered, decomp, line_mask,
                                     n_alus, n_ports, geom)
            code = compile(source, str(path), "exec")
            namespace: dict = {}
            exec(code, namespace)
            fn = namespace["replay"]
            payload = _checksum_header(source) + "\n" + source
            directory.mkdir(parents=True, exist_ok=True)
            fsio.atomic_write_bytes(path, payload.encode(),
                                    site="spec.put")
        if phase_seconds is not None:
            phase_seconds["codegen"] = time.perf_counter() - start
    _warm(fn)
    spec[mem_key] = fn
    return fn, decomp


def specialized_run(program: Program, trace: CommittedTrace,
                    config: MachineConfig,
                    kind: LevelTwoKind = LevelTwoKind.HYBRID, *,
                    warmup_instructions: int = 0,
                    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                    spec_dir: "str | os.PathLike | None" = None,
                    phase_seconds: "dict | None" = None,
                    ) -> SimulationResult:
    """Replay one configuration through the specialized module.

    Drop-in for :func:`repro.pipeline.kernel.kernel_run` over the
    stream kinds (hybrid/none), bit-for-bit equal to it (and therefore
    to the interpreted replay and live execution).  Anything else —
    wrongpath speculation, the ARVI kinds (their fused pass keeps live
    per-config state no decision stream can bake) — raises
    :class:`KernelUnsupported` so the caller falls through to the next
    tier (``kernel_run``, then interpreted replay).
    """
    if config.speculation != "redirect":
        raise KernelUnsupported(
            f"replay of {trace.program_name!r}: the specialized replay "
            "models redirect speculation only; wrongpath synthesis reads "
            "live architectural state")
    if kind not in _STREAM_KINDS:
        raise KernelUnsupported(
            f"replay of {trace.program_name!r}: trace specialization "
            f"covers the precomputable stream kinds; level-2 kind "
            f"{kind.value!r} replays through the fused kernel pass")
    lowered = ensure_lowered(program, trace)
    n = lowered.length
    if max_instructions > n and not trace.halted:
        raise TraceError(
            f"trace of {trace.program_name!r} exhausted at instruction "
            f"{n}: it was truncated at max_instructions="
            f"{trace.max_instructions}; use a live FunctionalCore or "
            "record a longer trace")
    n_run = n if n < max_instructions else max_instructions
    if n_run < 0:
        n_run = 0

    line_mask = ~(config.icache.line_bytes - 1)
    memory = MemoryHierarchy(config)
    geom = (memory.itlb._page_shift, memory.itlb._num_sets,
            memory.l1i._line_shift, memory.l1i._num_sets,
            memory.dtlb._page_shift, memory.dtlb._num_sets,
            memory.l1d._line_shift, memory.l1d._num_sets)
    fn, decomp = _replay_fn(lowered, line_mask, config.int_alus,
                            config.dcache_ports, geom, spec_dir,
                            phase_seconds)
    streams = lowered.streams_for(kind)
    if kind is LevelTwoKind.HYBRID:
        override_redirect = config.predictor_latencies.level2_hybrid + 1
    else:
        override_redirect = 1  # unreachable: NONE never overrides
    last_commit, commit_arr = fn(
        n_run, lowered.codes_for(line_mask), lowered.byte_pcs,
        lowered.dep1, lowered.dep2, lowered.mem_pos, lowered.mem_addr,
        lowered.store_dep, streams.bad, streams.override,
        decomp.run_bases, decomp.run_ends, decomp.run_shapes,
        memory, config.icache.hit_latency, config.frontend_depth,
        config.fetch_width, config.commit_width,
        config.rob_entries, config.lsq_entries,
        config.alu_latency, config.mult_latency, config.div_latency,
        override_redirect, config.int_muldiv == 1, config.int_muldiv)
    return stream_result(lowered, kind, config, warmup_instructions,
                         n_run, last_commit, commit_arr, memory)
