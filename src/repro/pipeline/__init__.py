"""Out-of-order pipeline substrate: config, caches, rename, timing engine."""

from repro.pipeline.bandwidth import BandwidthLimiter
from repro.pipeline.caches import MemoryHierarchy, SetAssociativeCache, TLB
from repro.pipeline.config import (
    CacheConfig,
    MachineConfig,
    PredictorLatencies,
    TLBConfig,
    machine_for_depth,
    table2_rows,
    table4_rows,
)
from repro.pipeline.engine import (
    PipelineEngine,
    TimingRecord,
    build_predictor,
    simulate,
)
from repro.pipeline.func_units import FunctionalUnitPool, FunctionalUnits
from repro.pipeline.functional import DynInst, ExecutionError, FunctionalCore
from repro.pipeline.rename import RenameError, RenameMap
from repro.pipeline.rob import RetirementWindow
from repro.pipeline.stats import BranchClassStats, SimulationResult
from repro.pipeline.trace import (
    CommittedTrace,
    TraceError,
    TraceRecorder,
    TraceReplayCore,
    record_trace,
)

__all__ = [
    "BandwidthLimiter",
    "BranchClassStats",
    "CacheConfig",
    "CommittedTrace",
    "DynInst",
    "ExecutionError",
    "FunctionalCore",
    "FunctionalUnitPool",
    "FunctionalUnits",
    "MachineConfig",
    "MemoryHierarchy",
    "PipelineEngine",
    "PredictorLatencies",
    "RenameError",
    "RenameMap",
    "RetirementWindow",
    "SetAssociativeCache",
    "SimulationResult",
    "TLB",
    "TLBConfig",
    "TimingRecord",
    "TraceError",
    "TraceRecorder",
    "TraceReplayCore",
    "build_predictor",
    "machine_for_depth",
    "record_trace",
    "simulate",
    "table2_rows",
    "table4_rows",
]
