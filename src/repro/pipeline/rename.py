"""Register rename: logical-to-physical map table and free list.

The paper requires rename early in the pipeline (at fetch) so the DDT and
ARVI can work with physical register names when a branch is fetched.  This
module implements the centralized-physical-register-file scheme of the
R10000/21264 that the paper assumes:

* every renamed destination takes a fresh physical register from the free
  list and remembers the register it displaced;
* the displaced register is returned to the free list when the renaming
  instruction *commits* (it can no longer be referenced);
* on squash the mapping is restored from a checkpoint.
"""

from __future__ import annotations

from collections import deque

from repro.isa.instructions import NUM_LOGICAL_REGS


class RenameError(RuntimeError):
    """Raised on free-list underflow or inconsistent rename operations."""


class RenameMap:
    """Map table + free list over ``num_phys_regs`` physical registers."""

    def __init__(self, num_phys_regs: int,
                 num_logical: int = NUM_LOGICAL_REGS) -> None:
        if num_phys_regs < num_logical:
            raise ValueError("need at least one physical per logical register")
        self.num_phys_regs = num_phys_regs
        self.num_logical = num_logical
        # Identity initial mapping: logical r -> physical r.
        self._map: list[int] = list(range(num_logical))
        self._free: deque[int] = deque(range(num_logical, num_phys_regs))
        # Inverse info for checks/debugging: preg -> logical or None.
        self._owner: list[int | None] = [None] * num_phys_regs
        for logical, preg in enumerate(self._map):
            self._owner[preg] = logical

    # -- queries ------------------------------------------------------------

    def lookup(self, logical: int) -> int:
        """Current physical register holding ``logical``."""
        return self._map[logical]

    def lookup_many(self, logicals) -> tuple[int, ...]:
        # Source tuples are 0-2 wide; explicit construction avoids the
        # generator machinery on the per-instruction rename path.
        m = self._map
        n = len(logicals)
        if n == 2:
            return (m[logicals[0]], m[logicals[1]])
        if n == 1:
            return (m[logicals[0]],)
        if n == 0:
            return ()
        return tuple(m[lr] for lr in logicals)

    @property
    def free_count(self) -> int:
        return len(self._free)

    def snapshot(self) -> tuple[int, ...]:
        """Checkpoint of the map table (for squash recovery)."""
        return tuple(self._map)

    # -- rename / commit ------------------------------------------------------

    def rename_dest(self, logical: int) -> tuple[int, int]:
        """Allocate a new physical register for a write to ``logical``.

        Returns ``(new_preg, displaced_preg)``; the displaced register must
        be passed to :meth:`release` when the renaming instruction commits.
        """
        if not self._free:
            raise RenameError("free list underflow")
        new_preg = self._free.popleft()
        displaced = self._map[logical]
        self._map[logical] = new_preg
        self._owner[new_preg] = logical
        return new_preg, displaced

    def release(self, preg: int) -> None:
        """Return a displaced physical register to the free list."""
        if preg < 0 or preg >= self.num_phys_regs:
            raise RenameError(f"bad physical register {preg}")
        self._owner[preg] = None
        self._free.append(preg)

    def restore(self, snapshot: tuple[int, ...],
                pregs_to_free) -> None:
        """Roll the map back to ``snapshot``; free squashed allocations."""
        if len(snapshot) != self.num_logical:
            raise RenameError("snapshot size mismatch")
        self._map = list(snapshot)
        for preg in pregs_to_free:
            self.release(preg)
        for logical, preg in enumerate(self._map):
            self._owner[preg] = logical

    def live_physical_registers(self) -> set[int]:
        """Physical registers currently mapped by some logical register."""
        return set(self._map)
