"""Per-cycle bandwidth limiter for monotone pipeline stages.

Fetch and commit consume their slots in program order, so requests arrive
with nondecreasing earliest-cycles and a simple (cycle, used) cursor
suffices — no per-cycle table is needed.
"""

from __future__ import annotations


class BandwidthLimiter:
    """Allocates up to ``width`` slots per cycle to monotone requests."""

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError("width must be positive")
        self.width = width
        self._cycle = 0
        self._used = 0

    def schedule(self, earliest: int) -> int:
        """Return the first cycle >= earliest with a free slot, claiming it.

        Raises if ``earliest`` moves backwards past an already-full cycle,
        which would indicate a non-monotone caller.
        """
        if earliest > self._cycle:
            self._cycle = earliest
            self._used = 0
        elif earliest < self._cycle:
            # An older cycle was requested: slots there are gone; serve from
            # the current cursor instead (in-order stages can only wait).
            pass
        if self._used >= self.width:
            self._cycle += 1
            self._used = 0
        self._used += 1
        return self._cycle

    @property
    def current_cycle(self) -> int:
        return self._cycle
