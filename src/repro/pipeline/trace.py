"""Trace-record/replay for the committed instruction stream.

In ``redirect`` mode the functional path is configuration-independent:
every timing point of a (benchmark, scale, seed) sweeps the *same*
committed :class:`~repro.pipeline.functional.DynInst` stream through a
different machine.  Re-interpreting the program per point is pure waste,
so this module records the stream once and replays it everywhere:

* :class:`TraceRecorder` runs the functional core once and captures the
  committed stream into a :class:`CommittedTrace` — a compact *columnar*
  form (parallel arrays of decoded PC indices, results, bit-packed branch
  outcomes, load/store effective addresses and store values), not a list
  of per-instruction objects;
* :class:`TraceReplayCore` exposes the ``FunctionalCore`` interface the
  engine consumes (``step`` / ``halted`` / ``instruction_count`` /
  initial ``registers``), reconstructing the stream from the columns, so
  :class:`~repro.pipeline.engine.PipelineEngine` is source-agnostic;
* :meth:`CommittedTrace.to_bytes` / :meth:`CommittedTrace.from_bytes`
  give the on-disk form used by the experiment-service trace store
  (``repro.experiments.tracing``).

Invariants (DESIGN.md §8):

* **Bit-for-bit replay** — a replayed run's ``SimulationResult`` equals
  the live-core run exactly.  Every ``DynInst`` field the timing engine
  reads is reproduced: ``seq``/``pc``/``op`` and the category flags,
  ``result``, ``taken``, ``next_pc``, ``addr``, ``store_value``.  Column
  *presence* is a pure opcode property (``DecodedInst.has_result``,
  ``is_load``/``is_store``/``is_cond_branch``), so no per-instruction
  presence flags are stored; ``next_pc`` is the following instruction's
  PC (the stream is the committed architectural order), stored explicitly
  only for the final instruction.
* **Operand values are not recorded** — replayed ``DynInst``\\ s carry
  ``sval1 == sval2 == 0``.  The engine never reads them; observers that
  need operand values must drive the engine from a live core.
* **Redirect only** — wrong-path synthesis reads live architectural
  state (registers/memory at the mispredicted branch), which a trace
  does not carry.  The engine rejects a replay core in ``wrongpath``
  mode.
* A trace is valid for budgets up to its recorded ``max_instructions``;
  asking a replay core to step past a budget-truncated recording raises
  :class:`TraceError` rather than silently diverging.
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
from array import array

from repro.isa import regs
from repro.isa.program import DATA_BASE, STACK_TOP, Program
from repro.pipeline.functional import (
    DEFAULT_MAX_INSTRUCTIONS,
    DynInst,
    FunctionalCore,
)

#: Version of the serialized trace layout; mismatches are load errors
#: (the trace store treats them as misses and re-records).
#: v2: the header carries a SHA-256 digest over the canonical header and
#: the raw column bytes, so any truncation or bit flip of a serialized
#: trace raises :class:`TraceError` instead of replaying divergently —
#: required now that traces are shipped to distributed queue workers.
TRACE_FORMAT_VERSION = 2

_MAGIC = b"REPROTRC"

#: 4-byte unsigned array typecode ('L' is 8 bytes on LP64 platforms).
_U32 = "I" if array("I").itemsize == 4 else "L"


class TraceError(RuntimeError):
    """A trace is malformed, mismatched with its program, or exhausted."""


class CommittedTrace:
    """Columnar recording of one committed instruction stream.

    Parallel columns (see module docstring for the presence rules):

    * ``pcs`` — one entry per committed instruction (decoded PC index);
    * ``results`` — one entry per result-producing instruction;
    * ``taken_bits`` — one bit per conditional branch, LSB-first;
    * ``addrs`` — one entry per load or store (effective address);
    * ``store_values`` — one entry per store.
    """

    __slots__ = (
        "program_name", "static_length", "entry", "length", "pcs",
        "results", "taken_bits", "branch_count", "addrs", "store_values",
        "final_next_pc", "halted", "max_instructions",
        "_dyn_cache", "_dyn_program", "_lowered_cache",
    )

    def __init__(self, *, program_name: str, static_length: int, entry: int,
                 pcs: array, results: array, taken_bits: bytes,
                 branch_count: int, addrs: array, store_values: array,
                 final_next_pc: int, halted: bool,
                 max_instructions: int) -> None:
        self.program_name = program_name
        self.static_length = static_length
        self.entry = entry
        self.length = len(pcs)
        self.pcs = pcs
        self.results = results
        self.taken_bits = taken_bits
        self.branch_count = branch_count
        self.addrs = addrs
        self.store_values = store_values
        self.final_next_pc = final_next_pc
        self.halted = halted
        self.max_instructions = max_instructions
        # Materialized DynInst stream, built lazily per program object and
        # shared by every replay of this trace (the engine never mutates
        # a DynInst, so one stream drives any number of timing configs).
        self._dyn_cache: list[DynInst] | None = None
        self._dyn_program: Program | None = None
        # Lowered array form (pipeline.kernel.LoweredTrace); like the
        # DynInst cache, built once per (trace, program) pair.
        self._lowered_cache = None

    # -- validation ----------------------------------------------------------

    def validate_for(self, program: Program) -> None:
        """Check this trace was recorded from (an equal build of) ``program``."""
        if (self.program_name != program.name
                or self.static_length != len(program.instructions)
                or self.entry != program.entry):
            raise TraceError(
                f"trace of {self.program_name!r} "
                f"({self.static_length} instructions, entry "
                f"{self.entry}) does not match program {program.name!r} "
                f"({len(program.instructions)} instructions, entry "
                f"{program.entry})")

    # -- replay materialization ----------------------------------------------

    def materialize(self, program: Program) -> list[DynInst]:
        """Reconstruct (and cache) the DynInst stream for ``program``.

        The list is built once per (trace, program) pair; replaying the
        same trace across a batch of timing configurations reuses the
        same read-only DynInst objects, so only the first replay pays the
        reconstruction cost.
        """
        if self._dyn_cache is not None and self._dyn_program is program:
            return self._dyn_cache
        self.validate_for(program)
        decoded = program.decoded().insts
        pcs = self.pcs
        results = self.results
        taken_bits = self.taken_bits
        addrs = self.addrs
        store_values = self.store_values
        n = self.length
        dyns: list[DynInst] = []
        append = dyns.append
        ri = bi = mi = si = 0
        try:
            for i in range(n):
                pc = pcs[i]
                d = decoded[pc]
                dyn = DynInst(i, pc, d.inst)
                if d.has_result:
                    dyn.result = results[ri]
                    ri += 1
                if d.is_cond_branch:
                    dyn.taken = bool((taken_bits[bi >> 3] >> (bi & 7)) & 1)
                    bi += 1
                elif d.is_load:
                    dyn.addr = addrs[mi]
                    mi += 1
                elif d.is_store:
                    dyn.addr = addrs[mi]
                    mi += 1
                    dyn.store_value = store_values[si]
                    si += 1
                dyn.next_pc = pcs[i + 1] if i + 1 < n else self.final_next_pc
                append(dyn)
        except IndexError as exc:
            raise TraceError(
                f"trace of {self.program_name!r} is internally "
                f"inconsistent (column exhausted at instruction {i})"
            ) from exc
        if (ri != len(results) or bi != self.branch_count
                or mi != len(addrs) or si != len(store_values)):
            raise TraceError(
                f"trace of {self.program_name!r} is internally "
                "inconsistent (column lengths do not match the stream)")
        self._dyn_cache = dyns
        self._dyn_program = program
        return dyns

    # -- serialization -------------------------------------------------------
    #
    # Layout: 8-byte magic, little-endian u32 header length, JSON header,
    # then the raw column bytes in fixed order (pcs, results, taken_bits,
    # addrs, store_values).  Arrays are written in native byte order with
    # the order recorded in the header; a cross-endian load byteswaps.
    # The header's "sha256" field digests the canonical header (minus the
    # digest itself) plus the column bytes, so every field and every
    # column is tamper-evident: a corrupted trace loads as TraceError,
    # never as a silently different committed stream.

    def to_bytes(self) -> bytes:
        header = {
            "format": TRACE_FORMAT_VERSION,
            "program": self.program_name,
            "static_length": self.static_length,
            "entry": self.entry,
            "length": self.length,
            "results": len(self.results),
            "branches": self.branch_count,
            "mem_ops": len(self.addrs),
            "stores": len(self.store_values),
            "final_next_pc": self.final_next_pc,
            "halted": self.halted,
            "max_instructions": self.max_instructions,
            "byteorder": sys.byteorder,
            "itemsize": array(_U32).itemsize,
        }
        columns = (self.pcs.tobytes() + self.results.tobytes()
                   + self.taken_bits + self.addrs.tobytes()
                   + self.store_values.tobytes())
        core = json.dumps(header, sort_keys=True,
                          separators=(",", ":")).encode()
        header["sha256"] = hashlib.sha256(core + columns).hexdigest()
        blob = json.dumps(header, sort_keys=True,
                          separators=(",", ":")).encode()
        out = bytearray(_MAGIC)
        out += struct.pack("<I", len(blob))
        out += blob
        out += columns
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CommittedTrace":
        """Parse a serialized trace; any malformed input is a TraceError."""
        try:
            if data[:8] != _MAGIC:
                raise TraceError("bad trace magic")
            (header_len,) = struct.unpack_from("<I", data, 8)
            header = json.loads(data[12:12 + header_len].decode())
            if header["format"] != TRACE_FORMAT_VERSION:
                raise TraceError(
                    f"trace format {header['format']} != "
                    f"{TRACE_FORMAT_VERSION}")
            itemsize = array(_U32).itemsize
            if header["itemsize"] != itemsize:
                raise TraceError("trace recorded with a different word size")
            length = header["length"]
            n_results = header["results"]
            n_branches = header["branches"]
            n_mem = header["mem_ops"]
            n_stores = header["stores"]
            n_taken_bytes = (n_branches + 7) // 8
            offset = 12 + header_len
            expected = (offset + (length + n_results + n_mem + n_stores)
                        * itemsize + n_taken_bytes)
            if len(data) != expected:
                raise TraceError(
                    f"trace payload is {len(data)} bytes, expected "
                    f"{expected}")
            stated = header.pop("sha256")
            core = json.dumps(header, sort_keys=True,
                              separators=(",", ":")).encode()
            actual = hashlib.sha256(core + data[offset:]).hexdigest()
            if stated != actual:
                raise TraceError("trace checksum mismatch")

            def take_array(count: int) -> array:
                nonlocal offset
                column = array(_U32)
                column.frombytes(data[offset:offset + count * itemsize])
                offset += count * itemsize
                if header["byteorder"] != sys.byteorder:
                    column.byteswap()
                return column

            pcs = take_array(length)
            results = take_array(n_results)
            taken_bits = bytes(data[offset:offset + n_taken_bytes])
            offset += n_taken_bytes
            addrs = take_array(n_mem)
            store_values = take_array(n_stores)
            return cls(
                program_name=header["program"],
                static_length=header["static_length"],
                entry=header["entry"],
                pcs=pcs, results=results, taken_bits=taken_bits,
                branch_count=n_branches, addrs=addrs,
                store_values=store_values,
                final_next_pc=header["final_next_pc"],
                halted=bool(header["halted"]),
                max_instructions=header["max_instructions"],
            )
        except TraceError:
            raise
        except Exception as exc:  # truncated/garbage input of any shape
            raise TraceError(f"malformed trace: {exc}") from exc


class TraceRecorder:
    """Runs the functional core once, capturing the committed stream."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.core = FunctionalCore(program)

    def record(self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
               ) -> CommittedTrace:
        """Execute to HALT (or the budget) and return the columnar trace."""
        core = self.core
        if core.instruction_count:
            raise TraceError("TraceRecorder instances are single-use")
        pcs = array(_U32)
        results = array(_U32)
        addrs = array(_U32)
        store_values = array(_U32)
        taken_bits = bytearray()
        branch_count = 0
        final_next_pc = self.program.entry
        pcs_append = pcs.append
        results_append = results.append
        addrs_append = addrs.append
        for dyn in core.run(max_instructions):
            pcs_append(dyn.pc)
            result = dyn.result
            if result is not None:
                results_append(result)
            taken = dyn.taken
            if taken is not None:
                if branch_count & 7 == 0:
                    taken_bits.append(0)
                if taken:
                    taken_bits[branch_count >> 3] |= 1 << (branch_count & 7)
                branch_count += 1
            addr = dyn.addr
            if addr is not None:
                addrs_append(addr)
                value = dyn.store_value
                if value is not None:
                    store_values.append(value)
            final_next_pc = dyn.next_pc
        return CommittedTrace(
            program_name=self.program.name,
            static_length=len(self.program.instructions),
            entry=self.program.entry,
            pcs=pcs, results=results, taken_bits=bytes(taken_bits),
            branch_count=branch_count, addrs=addrs,
            store_values=store_values, final_next_pc=final_next_pc,
            halted=core.halted, max_instructions=max_instructions,
        )


def record_trace(program: Program,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                 ) -> CommittedTrace:
    """One-call convenience: record ``program``'s committed stream."""
    return TraceRecorder(program).record(max_instructions)


class TraceReplayCore:
    """Replays a :class:`CommittedTrace` through the FunctionalCore interface.

    Exposes exactly what the timing engine consumes: ``step()`` yielding
    the committed DynInst stream, ``halted`` / ``instruction_count`` with
    live-core transition semantics, and the initial architectural
    ``registers``.  It carries no memory image — the engine rejects it in
    ``wrongpath`` mode, which needs live state for wrong-path synthesis.
    """

    is_replay = True

    def __init__(self, program: Program, trace: CommittedTrace) -> None:
        trace.validate_for(program)
        self.program = program
        self.trace = trace
        self.registers = [0] * 32
        self.registers[regs.sp] = STACK_TOP
        self.registers[regs.gp] = DATA_BASE
        self.pc = program.entry
        self.halted = False
        self.instruction_count = 0
        self._dyns = trace.materialize(program)
        self._length = trace.length
        self._halted_at_end = trace.halted

    def take_stream(self, max_instructions: int) -> list[DynInst] | None:
        """Hand the whole materialized stream to the engine at once.

        When this fresh core can satisfy the engine's full run — the
        recorded program halted within both the recording budget and the
        engine's — the engine iterates the DynInst list directly instead
        of calling :meth:`step` per instruction, and the core jumps to
        its final state here.  Returns None when wholesale consumption is
        not possible (partially stepped core, or a budget that would
        truncate the run), in which case the engine falls back to
        ``step()``.
        """
        if (self.instruction_count == 0 and self._halted_at_end
                and self._length <= max_instructions):
            self.instruction_count = self._length
            self.halted = True
            self.pc = self.trace.final_next_pc
            return self._dyns
        return None

    def step(self) -> DynInst | None:
        """Replay one instruction; returns None once halted."""
        if self.halted:
            return None
        i = self.instruction_count
        if i >= self._length:
            raise TraceError(
                f"trace of {self.trace.program_name!r} exhausted at "
                f"instruction {i}: it was truncated at max_instructions="
                f"{self.trace.max_instructions}; use a live FunctionalCore "
                "or record a longer trace")
        dyn = self._dyns[i]
        i += 1
        self.instruction_count = i
        self.pc = dyn.next_pc
        if i == self._length and self._halted_at_end:
            self.halted = True
        return dyn

    def run(self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS):
        """Yield replayed instructions until HALT or the budget (parity
        with :meth:`FunctionalCore.run`)."""
        while not self.halted and self.instruction_count < max_instructions:
            dyn = self.step()
            if dyn is None:
                break
            yield dyn
