"""Functional unit pools for the cycle-accounting issue model.

Each pool holds ``count`` servers as a min-heap of next-free cycles.  An
instruction requesting issue at ``earliest`` receives the first cycle at
which both it and a server are ready.  ``occupancy`` is how long a server
stays busy per operation: 1 for pipelined units (a new op can start every
cycle), equal to the full latency for unpipelined units (the divider).
"""

from __future__ import annotations

import heapq

from repro.pipeline.config import MachineConfig


class FunctionalUnitPool:
    """A pool of identical servers with a shared dispatch heap."""

    def __init__(self, name: str, count: int) -> None:
        if count < 1:
            raise ValueError(f"{name}: need at least one unit")
        self.name = name
        self.count = count
        self._free_at = [0] * count
        heapq.heapify(self._free_at)
        self.operations = 0
        self.busy_cycles = 0

    def issue(self, earliest: int, occupancy: int = 1) -> int:
        """Claim a server; returns the actual start cycle (>= earliest)."""
        server_free = heapq.heappop(self._free_at)
        start = earliest if earliest >= server_free else server_free
        heapq.heappush(self._free_at, start + occupancy)
        self.operations += 1
        self.busy_cycles += occupancy
        return start

    def next_free(self) -> int:
        """Earliest cycle at which any server is available."""
        return self._free_at[0]


class FunctionalUnits:
    """The paper's Table 2 execution resources."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.int_alu = FunctionalUnitPool("int-alu", config.int_alus)
        self.int_muldiv = FunctionalUnitPool("int-muldiv", config.int_muldiv)
        self.fp_alu = FunctionalUnitPool("fp-alu", config.fp_alus)
        self.fp_muldiv = FunctionalUnitPool("fp-muldiv", config.fp_muldiv)
        self.dcache_port = FunctionalUnitPool("dcache-port", config.dcache_ports)
