"""Simulation statistics and results.

``SimulationResult`` carries everything the paper's figures need: IPC over
the measured window, final/level-1 prediction accuracy, the ARVI
calculated-vs-load branch classification and per-class accuracy
(Figure 5), override counts, BVIT behaviour and memory-hierarchy counters.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

from repro.pipeline.caches import MemoryStats


@dataclass
class BranchClassStats:
    """Per-class (calculated / load) branch accounting — Figure 5(b)."""

    branches: int = 0
    correct: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.branches if self.branches else 0.0

    def record(self, was_correct: bool) -> None:
        self.branches += 1
        if was_correct:
            self.correct += 1

    def to_dict(self) -> dict:
        return {"branches": self.branches, "correct": self.correct}

    @classmethod
    def from_dict(cls, data: dict) -> "BranchClassStats":
        return cls(branches=int(data["branches"]),
                   correct=int(data["correct"]))


@dataclass
class SimulationResult:
    """Measured-window outcome of one engine run."""

    benchmark: str = ""
    configuration: str = ""
    pipeline_depth: int = 0
    instructions: int = 0
    cycles: int = 0
    total_instructions: int = 0
    total_cycles: int = 0
    warmup_instructions: int = 0
    speculation: str = "redirect"

    cond_branches: int = 0
    final_correct: int = 0
    l1_correct: int = 0
    overrides: int = 0
    overrides_helpful: int = 0
    overrides_harmful: int = 0
    l2_used: int = 0

    calculated: BranchClassStats = field(default_factory=BranchClassStats)
    load: BranchClassStats = field(default_factory=BranchClassStats)

    arvi_bvit_hits: int = 0
    arvi_lookups: int = 0

    loads: int = 0
    stores: int = 0
    memory: MemoryStats = field(default_factory=MemoryStats)
    ras_accuracy: float = 1.0

    # Wrong-path speculation counters (``speculation="wrongpath"``; all
    # zero in redirect mode).  These cover the *whole* run, not just the
    # measured window — wrong-path pollution and recovery are state
    # effects that matter during warmup too, like the memory counters.
    wrong_path_instructions: int = 0
    wrong_path_loads: int = 0
    wrong_path_stores: int = 0
    wrong_path_branches: int = 0
    rollbacks: int = 0            # in-engine DDT rollback_to invocations
    squashed_tokens: int = 0      # DDT entries squashed across all rollbacks

    # -- serialization --------------------------------------------------------
    #
    # The round trip is lossless (every field is an int, float or str), so
    # a result replayed from the JSON cache or shipped back from a worker
    # process compares equal (==) to the freshly computed object.  The
    # experiment cache relies on this.

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        kwargs = {
            f.name: data[f.name]
            for f in fields(cls)
            if f.name not in ("calculated", "load", "memory")
        }
        kwargs["calculated"] = BranchClassStats.from_dict(data["calculated"])
        kwargs["load"] = BranchClassStats.from_dict(data["load"])
        kwargs["memory"] = MemoryStats.from_dict(data["memory"])
        return cls(**kwargs)

    # -- derived metrics ------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def prediction_accuracy(self) -> float:
        if not self.cond_branches:
            return 1.0
        return self.final_correct / self.cond_branches

    @property
    def l1_accuracy(self) -> float:
        if not self.cond_branches:
            return 1.0
        return self.l1_correct / self.cond_branches

    @property
    def mispredictions(self) -> int:
        return self.cond_branches - self.final_correct

    @property
    def mpki(self) -> float:
        """Mispredictions per thousand instructions."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    @property
    def load_branch_rate(self) -> float:
        """Figure 5(a): fraction of conditional branches that are load
        branches (chain terminating in a pending load)."""
        classified = self.calculated.branches + self.load.branches
        return self.load.branches / classified if classified else 0.0

    @property
    def bvit_hit_rate(self) -> float:
        return self.arvi_bvit_hits / self.arvi_lookups if self.arvi_lookups else 0.0

    @property
    def wrong_path_ratio(self) -> float:
        """Wrong-path instructions per committed instruction (whole run)."""
        if not self.total_instructions:
            return 0.0
        return self.wrong_path_instructions / self.total_instructions

    @property
    def wrong_path_fills(self) -> int:
        """Cache lines brought in by squashed instructions (pollution)."""
        memory = self.memory
        return (memory.wrong_path_l1i_misses + memory.wrong_path_l1d_misses
                + memory.wrong_path_l2_misses)

    def summary(self) -> str:
        lines = [
            f"benchmark={self.benchmark} config={self.configuration} "
            f"depth={self.pipeline_depth}",
            f"  instructions={self.instructions} cycles={self.cycles} "
            f"IPC={self.ipc:.3f}",
            f"  branches={self.cond_branches} "
            f"accuracy={self.prediction_accuracy:.4f} "
            f"(L1 {self.l1_accuracy:.4f}) MPKI={self.mpki:.2f}",
        ]
        if self.arvi_lookups:
            lines.append(
                f"  load-branch rate={self.load_branch_rate:.3f} "
                f"calc acc={self.calculated.accuracy:.4f} "
                f"load acc={self.load.accuracy:.4f} "
                f"BVIT hit={self.bvit_hit_rate:.3f}")
        if self.speculation != "redirect" or self.wrong_path_instructions:
            lines.append(
                f"  speculation={self.speculation} "
                f"wrong-path insts={self.wrong_path_instructions} "
                f"(ratio {self.wrong_path_ratio:.3f}) "
                f"rollbacks={self.rollbacks} "
                f"squashed={self.squashed_tokens} "
                f"pollution fills={self.wrong_path_fills}")
        return "\n".join(lines)
