"""Occupancy windows for in-order-allocated, in-order-freed structures.

The reorder buffer and the load/store queue both behave the same way for
timing purposes: an entry is claimed at dispatch in program order and
freed at commit in program order.  ``RetirementWindow`` tracks the commit
cycles of the most recent ``capacity`` occupants; when full, a new
allocation must wait for the oldest occupant's commit cycle.
"""

from __future__ import annotations

from collections import deque


class RetirementWindow:
    """Sliding window of commit cycles with fixed capacity."""

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"{name}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._commits: deque[int] = deque()
        self.allocations = 0
        self.full_stalls = 0

    def earliest_allocation(self, requested: int) -> int:
        """Earliest cycle >= requested at which an entry is available.

        The freed entry becomes usable the cycle after its occupant commits.
        """
        if len(self._commits) < self.capacity:
            return requested
        free_at = self._commits[0] + 1
        if free_at > requested:
            self.full_stalls += 1
            return free_at
        return requested

    def allocate(self, commit_cycle: int) -> None:
        """Record the new occupant; oldest entry is evicted when full.

        Callers must have already waited until :meth:`earliest_allocation`,
        so evicting the oldest entry here models its commit-time free.
        """
        if len(self._commits) >= self.capacity:
            self._commits.popleft()
        self._commits.append(commit_cycle)
        self.allocations += 1

    @property
    def occupancy(self) -> int:
        return len(self._commits)
