"""Out-of-order superscalar timing engine.

A cycle-accounting model of the paper's Table 2 machine: instructions are
processed in program order (driven by the functional oracle) and each one
receives fetch / rename / issue / complete / commit timestamps subject to

* fetch and commit bandwidth (4/cycle), I-cache and ITLB stalls,
* ROB (256) and LSQ (32) occupancy,
* data dependences through renamed physical registers,
* functional unit and D-cache port contention,
* frontend depth (pipeline_depth - 2 cycles from fetch to earliest issue),
* branch redirects: a level-2 override costs its predictor latency; a
  final misprediction restarts fetch after the branch executes, so the
  penalty scales with pipeline depth as in the paper.

The engine owns the DDT/RSE/shadow machinery: every instruction is renamed
early (one cycle after fetch, as ARVI requires), inserted into the DDT,
and retired from it when its commit cycle passes.  Conditional branches
consult the two-level predictor; in ARVI configurations the engine builds
the RSE register-set view according to the value mode (current / load
back / perfect).

Two speculation models are available (``MachineConfig.speculation``,
DESIGN.md §2.2-§2.3):

* ``redirect`` (default) — wrong-path instructions are not materialized;
  their cost is carried by the redirect accounting alone, and results are
  bit-for-bit identical to the seed engine.
* ``wrongpath`` — on a misprediction the engine checkpoints the rename
  map, shadow structures, predictor histories and DDT head
  (``repro.speculation.checkpoint``), synthesizes the wrong-path
  instruction stream against copy-on-write state views
  (``repro.speculation.wrongpath``), renames it into the DDT and lets it
  pollute the memory hierarchy, then squashes it through the DDT's
  ROB-style ``rollback_to`` when the branch resolves.  Wrong-path
  instructions do not contend for functional units or fetch/commit
  bandwidth (their timing cost stays with the redirect accounting); their
  modelled effects are cache/TLB pollution, DDT/rename occupancy and
  speculative predictor history, repaired by checkpoint restore.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.core.arvi import (
    ARVIConfig,
    ARVIPredictor,
    ARVIRequest,
    RegisterView,
    ValueMode,
)
from repro.core.ddt import FastDDT
from repro.core.rse import ChainInfoTable
from repro.core.shadow import ShadowMapTable, ShadowRegisterFile
from repro.isa import regs
from repro.isa.decoded import (
    FU_ALU,
    FU_DIV,
    FU_LOAD,
    FU_MULT,
    FU_STORE,
    DecodedInst,
)
from repro.isa.instructions import Op
from repro.isa.program import Program
from repro.pipeline.bandwidth import BandwidthLimiter
from repro.pipeline.caches import MemoryHierarchy
from repro.pipeline.config import MachineConfig
from repro.pipeline.func_units import FunctionalUnits
from repro.pipeline.functional import (
    DEFAULT_MAX_INSTRUCTIONS,
    DynInst,
    FunctionalCore,
)
from repro.pipeline.rename import RenameMap
from repro.pipeline.rob import RetirementWindow
from repro.pipeline.stats import SimulationResult
from repro.predictors.confidence import ConfidenceEstimator
from repro.predictors.gskew import level1_gskew, level2_gskew
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.twolevel import LevelTwoKind, TwoLevelPredictor
from repro.speculation.checkpoint import CrossCheckedDDT, RecoveryManager
from repro.speculation.wrongpath import WrongPathCore

_REDIRECT_LATENCY = 1  # cycles to restart fetch after a resolved mispredict

_OP_JAL = int(Op.JAL)
_OP_JR = int(Op.JR)


@dataclass(slots=True)
class TimingRecord:
    """Per-instruction timing exposed to observers (applications layer)."""

    seq: int
    pc: int
    op: int
    fetch: int
    dispatch: int
    issue: int
    complete: int
    commit: int
    chain_length: int
    is_load: bool
    is_branch: bool
    mispredicted: bool


Observer = Callable[[TimingRecord, DynInst], None]


# Retire-queue entries are plain tuples on the per-instruction path:
# (token, dest_preg, value, commit, displaced).
_RETIRE_COMMIT = 3  # tuple index of the commit cycle


class PipelineEngine:
    """One simulation: a program on a machine with a predictor stack."""

    def __init__(self, program: Program, config: MachineConfig,
                 predictor: TwoLevelPredictor,
                 *, value_mode: ValueMode = ValueMode.CURRENT,
                 warmup_instructions: int = 0,
                 observers: list[Observer] | None = None,
                 ddt_cross_check: bool = False,
                 core: FunctionalCore | None = None,
                 sampler=None) -> None:
        self.program = program
        self.config = config
        self.predictor = predictor
        self.value_mode = value_mode
        self.warmup_instructions = warmup_instructions
        self.observers = observers or []
        # Optional read-only interval telemetry (duck-typed so the
        # pipeline layer does not depend on repro.obs): an object with
        # ``first_threshold`` and ``record(cycle, seq, rob_occupancy,
        # ddt, src_pregs, cond_branches, final_correct) -> next
        # threshold`` — see ``repro.obs.interval.IntervalSampler``.
        # Sampling only *reads* engine state; results are bit-for-bit
        # identical with or without it (identity suite in tests/obs/).
        self.sampler = sampler
        # Recovery machinery exists only in wrongpath mode, so the
        # redirect path stays byte-identical to the seed engine.
        self.recovery = (RecoveryManager()
                         if config.speculation == "wrongpath" else None)

        # The functional source is pluggable: a live interpreter by
        # default, or any object exposing the same interface (``step``,
        # ``halted``, ``instruction_count``, initial ``registers``) —
        # notably ``pipeline.trace.TraceReplayCore``, which replays a
        # recorded committed stream so one functional run can drive many
        # timing configurations.
        if core is None:
            core = FunctionalCore(program)
        elif core.program is not program:
            raise ValueError(
                "functional source was built for a different program")
        if self.recovery is not None and getattr(core, "is_replay", False):
            raise ValueError(
                "trace replay cannot drive speculation='wrongpath': "
                "wrong-path synthesis reads live architectural state; "
                "use a live FunctionalCore")
        self.core = core
        self.memory = MemoryHierarchy(config)
        self.units = FunctionalUnits(config)
        self.fetch_bw = BandwidthLimiter(config.fetch_width)
        self.commit_bw = BandwidthLimiter(config.commit_width)
        self.rob = RetirementWindow("ROB", config.rob_entries)
        self.lsq = RetirementWindow("LSQ", config.lsq_entries)
        self.rename = RenameMap(config.num_phys_regs)
        self.ras = ReturnAddressStack()

        n_pregs = config.num_phys_regs
        # Cross-check mode mirrors every DDT operation into the
        # hardware-faithful DDT (tests of the in-engine rollback).
        self.ddt = (CrossCheckedDDT(n_pregs, config.rob_entries)
                    if ddt_cross_check
                    else FastDDT(n_pregs, config.rob_entries))
        self.chains = ChainInfoTable()
        self.shadow_values = ShadowRegisterFile(n_pregs)
        self.shadow_map = ShadowMapTable(n_pregs)
        for logical in range(self.rename.num_logical):
            preg = self.rename.lookup(logical)
            self.shadow_map.record(preg, logical)
            self.shadow_values.write(preg, self.core.registers[logical])

        self._preg_ready = [0] * n_pregs
        self._preg_value = [0] * n_pregs
        for logical in range(self.rename.num_logical):
            self._preg_value[self.rename.lookup(logical)] = (
                self.core.registers[logical])
        self._preg_pending = [False] * n_pregs
        self._preg_is_load = [False] * n_pregs
        self._preg_hoist_avail = [0] * n_pregs

        self._retire_queue: deque[tuple] = deque()
        self._fetch_barrier = 0
        self._last_commit = 0
        self._last_fetch_line = -1
        # Pending stores for forwarding: word addr -> (data ready, commit).
        self._pending_stores: dict[int, tuple[int, int]] = {}

        # Hot-loop constants and views, hoisted out of the per-instruction
        # path (attribute chains through config are surprisingly costly).
        self._decoded = program.decoded().insts
        self._frontend_depth = config.frontend_depth
        self._rename_offset = config.rename_offset
        self._icache_hit_latency = config.icache.hit_latency
        self._alu_latency = config.alu_latency
        self._mult_latency = config.mult_latency
        self._div_latency = config.div_latency

        self.result = SimulationResult(
            benchmark=program.name,
            configuration=self._config_name(),
            pipeline_depth=config.pipeline_depth,
            warmup_instructions=warmup_instructions,
            speculation=config.speculation,
        )
        self._measured_start_cycle = 0
        self._line_mask = ~(config.icache.line_bytes - 1)

    def _config_name(self) -> str:
        if self.predictor.kind is LevelTwoKind.ARVI:
            return f"arvi {self.value_mode.value}"
        return f"2-level {self.predictor.kind.value}"

    # -- public API ---------------------------------------------------------------

    def _live_stream(self, core, max_instructions: int):
        """Drive a live functional source one ``step()`` at a time."""
        step = core.step
        while not core.halted and core.instruction_count < max_instructions:
            dyn = step()
            if dyn is None:
                return
            yield dyn

    def run(self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
            ) -> SimulationResult:
        """Simulate until HALT or the instruction budget; returns stats.

        The per-instruction pipeline stages (the former ``_process`` /
        ``_execute`` pair) are fused into one loop body working on local
        aliases of every hot structure — attribute traffic and per-stage
        call overhead dominate the pure-Python cycle model, so the fetch
        and commit bandwidth cursors, the ROB/LSQ occupancy windows and
        the single-cycle functional-unit pools are inlined here and their
        objects resynchronized when the loop exits.  The arithmetic is
        unchanged stage for stage; results are bit-for-bit identical to
        the unfused engine (frozen redirect goldens + equality tests).
        """
        core = self.core
        take = getattr(core, "take_stream", None)
        stream = take(max_instructions) if take is not None else None
        if stream is None:
            stream = self._live_stream(core, max_instructions)

        # ---- hot locals ---------------------------------------------------
        decoded = self._decoded
        warmup = self.warmup_instructions
        line_mask = self._line_mask
        rename_offset = self._rename_offset
        frontend_depth = self._frontend_depth
        icache_hit_latency = self._icache_hit_latency
        alu_latency = self._alu_latency
        mult_latency = self._mult_latency
        div_latency = self._div_latency
        memory = self.memory
        mem_ilat = memory.instruction_latency
        mem_dlat = memory.data_latency
        rename = self.rename
        rename_map = rename._map
        rename_free = rename._free
        rename_owner = rename._owner
        ddt_allocate = self.ddt.allocate
        chains_info = self.chains._info
        shadow_record = self.shadow_map.record
        preg_ready = self._preg_ready
        preg_value = self._preg_value
        preg_pending = self._preg_pending
        preg_is_load = self._preg_is_load
        preg_hoist = self._preg_hoist_avail
        pending_stores = self._pending_stores
        retire_queue = self._retire_queue
        retire_append = retire_queue.append
        retire_until = self._retire_until
        predict_branch = self._predict_branch
        resolve_branch = self._resolve_branch
        hoist_available = self._hoist_available
        ras_push = self.ras.push
        ras_pop = self.ras.pop
        result = self.result
        observers = self.observers
        sampler = self.sampler
        sample_record = sampler.record if sampler is not None else None
        next_sample = sampler.first_threshold if sampler is not None else 0
        ddt_obj = self.ddt
        heappush = heapq.heappush
        heappop = heapq.heappop
        sync_spec = self.recovery is not None

        rob = self.rob
        lsq = self.lsq
        rob_commits = rob._commits
        rob_capacity = rob.capacity
        rob_popleft = rob_commits.popleft
        rob_append = rob_commits.append
        lsq_commits = lsq._commits
        lsq_capacity = lsq.capacity
        lsq_popleft = lsq_commits.popleft
        lsq_append = lsq_commits.append
        rob_allocs = rob_stalls = lsq_allocs = lsq_stalls = 0

        fetch_bw = self.fetch_bw
        commit_bw = self.commit_bw
        fetch_width = fetch_bw.width
        fetch_cycle = fetch_bw._cycle
        fetch_used = fetch_bw._used
        commit_width = commit_bw.width
        commit_cycle = commit_bw._cycle
        commit_used = commit_bw._used

        alu_pool = self.units.int_alu
        alu_free = alu_pool._free_at
        alu_ops = 0
        dcache_pool = self.units.dcache_port
        dcache_free = dcache_pool._free_at
        dcache_ops = 0
        muldiv_issue = self.units.int_muldiv.issue

        fetch_barrier = self._fetch_barrier
        last_fetch_line = self._last_fetch_line
        last_commit = self._last_commit

        try:
            for dyn in stream:
                seq = dyn.seq
                measured = seq >= warmup
                d: DecodedInst = decoded[dyn.pc]
                is_load = d.is_load
                is_store = d.is_store
                is_cond_branch = d.is_cond_branch

                # ---- fetch ---------------------------------------------------
                earliest = fetch_barrier
                if len(rob_commits) >= rob_capacity:
                    free_at = rob_commits[0] + 1
                    if free_at > earliest:
                        rob_stalls += 1
                        earliest = free_at
                is_mem = is_load or is_store
                if is_mem and len(lsq_commits) >= lsq_capacity:
                    free_at = lsq_commits[0] + 1
                    if free_at > earliest:
                        lsq_stalls += 1
                        earliest = free_at
                byte_pc = d.byte_pc
                line = byte_pc & line_mask
                if line != last_fetch_line:
                    last_fetch_line = line
                    extra = mem_ilat(byte_pc) - icache_hit_latency
                    if extra > 0:
                        earliest += extra
                if earliest > fetch_cycle:
                    fetch_cycle = earliest
                    fetch_used = 0
                if fetch_used >= fetch_width:
                    fetch_cycle += 1
                    fetch_used = 0
                fetch_used += 1
                fetch = fetch_cycle

                # ---- rename (early, one cycle after fetch) -------------------
                rename_cycle = fetch + rename_offset
                if retire_queue and retire_queue[0][3] <= rename_cycle:
                    retire_until(rename_cycle)

                sources = d.sources
                n_sources = len(sources)
                if n_sources == 2:
                    src_pregs = (rename_map[sources[0]],
                                 rename_map[sources[1]])
                elif n_sources == 1:
                    src_pregs = (rename_map[sources[0]],)
                elif n_sources == 0:
                    src_pregs = ()
                else:  # pragma: no cover - no opcode has >2 sources
                    src_pregs = rename.lookup_many(sources)

                # Branch prediction reads the DDT *before* the branch is
                # inserted.
                decision = None
                if is_cond_branch:
                    decision = predict_branch(dyn, src_pregs, fetch)

                dest_preg = None
                displaced = None
                if d.needs_dest:
                    if not rename_free:
                        rename.rename_dest(d.rd)  # raises RenameError
                    rd = d.rd
                    dest_preg = rename_free.popleft()
                    displaced = rename_map[rd]
                    rename_map[rd] = dest_preg
                    rename_owner[dest_preg] = rd
                    shadow_record(dest_preg, rd)

                token = ddt_allocate(dest_preg, src_pregs)
                chains_info[token] = (dest_preg, src_pregs, is_load)

                # ---- issue / execute -----------------------------------------
                ready = dispatch = fetch + frontend_depth
                for preg in src_pregs:
                    when = preg_ready[preg]
                    if when > ready:
                        ready = when
                fu = d.fu_class
                if fu == FU_ALU:
                    # Register/immediate ALU ops and conditional branches.
                    server_free = heappop(alu_free)
                    issue = ready if ready >= server_free else server_free
                    heappush(alu_free, issue + 1)
                    alu_ops += 1
                    complete = issue + alu_latency
                elif fu == FU_LOAD:
                    # Address generation on an ALU, then the D-cache access.
                    server_free = heappop(alu_free)
                    issue = ready if ready >= server_free else server_free
                    heappush(alu_free, issue + 1)
                    alu_ops += 1
                    agen1 = issue + 1
                    server_free = heappop(dcache_free)
                    access = agen1 if agen1 >= server_free else server_free
                    heappush(dcache_free, access + 1)
                    dcache_ops += 1
                    addr = dyn.addr
                    word = addr & ~3 if addr is not None else 0
                    pending = pending_stores.get(word)
                    if pending is not None and pending[1] > access:
                        # Forward from the in-flight store once its data
                        # is ready.
                        data_ready = pending[0]
                        complete = (access if access >= data_ready
                                    else data_ready) + 1
                    else:
                        complete = access + mem_dlat(addr or 0)
                elif fu == FU_STORE:
                    # Address + data staged into the LSQ; memory written
                    # at commit.
                    server_free = heappop(alu_free)
                    issue = ready if ready >= server_free else server_free
                    heappush(alu_free, issue + 1)
                    alu_ops += 1
                    complete = issue + 1
                elif fu == FU_MULT:
                    issue = muldiv_issue(ready)
                    complete = issue + mult_latency
                elif fu == FU_DIV:
                    issue = muldiv_issue(ready, div_latency)
                    complete = issue + div_latency
                else:
                    # Jumps, NOP, HALT: resolved in the frontend/ALU in
                    # one cycle.
                    server_free = heappop(alu_free)
                    issue = ready if ready >= server_free else server_free
                    heappush(alu_free, issue + 1)
                    alu_ops += 1
                    complete = issue + 1

                # ---- commit --------------------------------------------------
                commit_req = complete + 1
                if commit_req < last_commit:
                    commit_req = last_commit
                if commit_req > commit_cycle:
                    commit_cycle = commit_req
                    commit_used = 0
                if commit_used >= commit_width:
                    commit_cycle += 1
                    commit_used = 0
                commit_used += 1
                commit = commit_cycle
                last_commit = commit
                if len(rob_commits) >= rob_capacity:
                    rob_popleft()
                rob_append(commit)
                rob_allocs += 1
                if is_mem:
                    if len(lsq_commits) >= lsq_capacity:
                        lsq_popleft()
                    lsq_append(commit)
                    lsq_allocs += 1

                # ---- writeback bookkeeping -----------------------------------
                res = dyn.result
                value = res if res is not None else 0
                if dest_preg is not None:
                    preg_ready[dest_preg] = complete
                    preg_value[dest_preg] = value
                    preg_pending[dest_preg] = True
                    preg_is_load[dest_preg] = is_load
                    if is_load:
                        preg_hoist[dest_preg] = hoist_available(
                            dyn, src_pregs, complete, issue)
                if is_store and dyn.addr is not None:
                    pending_stores[dyn.addr & ~3] = (complete, commit)

                retire_append((token, dest_preg, value, commit, displaced))

                # ---- control flow resolution ---------------------------------
                mispredicted = False
                if is_cond_branch:
                    if sync_spec:
                        # A mispredict may run a wrong-path episode whose
                        # squash restores engine state: publish the fetch
                        # line, then re-read it (and the rename map the
                        # restore rebuilds) afterwards.
                        self._last_fetch_line = last_fetch_line
                    mispredicted = resolve_branch(
                        dyn, decision, fetch, complete, measured, token)
                    fetch_barrier = self._fetch_barrier
                    if sync_spec:
                        last_fetch_line = self._last_fetch_line
                        rename_map = rename._map
                elif dyn.op == _OP_JAL:
                    ras_push(dyn.pc + 1)
                elif dyn.op == _OP_JR:
                    ras_pop(dyn.next_pc)
                # J/JAL targets are decoded in the frontend; JR is modelled
                # via a perfect RAS (its real accuracy is in the stats).

                # ---- statistics ----------------------------------------------
                if seq == warmup:
                    self._measured_start_cycle = commit
                if measured:
                    if is_load:
                        result.loads += 1
                    elif is_store:
                        result.stores += 1

                if sample_record is not None and commit >= next_sample:
                    next_sample = sample_record(
                        commit, seq, len(rob_commits), ddt_obj, src_pregs,
                        result.cond_branches, result.final_correct)

                if observers:
                    record = TimingRecord(
                        seq=seq, pc=dyn.pc, op=dyn.op, fetch=fetch,
                        dispatch=dispatch, issue=issue, complete=complete,
                        commit=commit,
                        chain_length=self.ddt.chain_length(*src_pregs),
                        is_load=is_load, is_branch=is_cond_branch,
                        mispredicted=mispredicted)
                    for observer in observers:
                        observer(record, dyn)
        finally:
            # ---- resynchronize the inlined structures ------------------------
            self._fetch_barrier = fetch_barrier
            self._last_fetch_line = last_fetch_line
            self._last_commit = last_commit
            fetch_bw._cycle = fetch_cycle
            fetch_bw._used = fetch_used
            commit_bw._cycle = commit_cycle
            commit_bw._used = commit_used
            rob.allocations += rob_allocs
            rob.full_stalls += rob_stalls
            lsq.allocations += lsq_allocs
            lsq.full_stalls += lsq_stalls
            alu_pool.operations += alu_ops
            alu_pool.busy_cycles += alu_ops
            dcache_pool.operations += dcache_ops
            dcache_pool.busy_cycles += dcache_ops

        result.total_instructions = self.core.instruction_count
        result.total_cycles = self._last_commit
        measured_count = self.core.instruction_count - self.warmup_instructions
        result.instructions = max(measured_count, 0)
        result.cycles = max(self._last_commit - self._measured_start_cycle, 0)
        result.memory = self.memory.stats()
        result.ras_accuracy = self.ras.accuracy
        if self.recovery is not None:
            # The recovery manager is the source of truth for squash
            # accounting (wrong_path_* counters stay per-episode in
            # _run_wrong_path).
            result.rollbacks = self.recovery.rollbacks
            result.squashed_tokens = self.recovery.squashed_tokens
        arvi = self.predictor.arvi
        if arvi is not None:
            result.arvi_lookups = arvi.bvit.stats.lookups
            result.arvi_bvit_hits = arvi.bvit.stats.hits
        return result

    def _hoist_available(self, dyn: DynInst, src_pregs: tuple[int, ...],
                         complete: int, issue: int) -> int:
        """Earliest cycle this load's value could exist under *load back*.

        Models hoisting the load to just after its address operands are
        ready, with aggressive run-time memory disambiguation (paper
        Section 5): the hoisted load still pays its actual memory latency
        and cannot start before a forwarding store's data exists.
        """
        operands = 0
        for preg in src_pregs:
            when = self._preg_ready[preg]
            if when > operands:
                operands = when
        actual_latency = complete - issue
        word = dyn.addr & ~3 if dyn.addr is not None else 0
        pending = self._pending_stores.get(word)
        hoist_start = operands
        if pending is not None:
            hoist_start = max(hoist_start, pending[0])
        return hoist_start + actual_latency

    # -- branch machinery ------------------------------------------------------------

    def _predict_branch(self, dyn: DynInst, src_pregs: tuple[int, ...],
                        fetch: int):
        level1 = self.predictor.level1
        if isinstance(level1, PerfectPredictor):
            level1.set_outcome(bool(dyn.taken))
        request = None
        if self.predictor.kind is LevelTwoKind.ARVI:
            request = self._build_arvi_request(dyn, src_pregs, fetch)
        return self.predictor.decide(dyn.pc, request)

    def _build_arvi_request(self, dyn: DynInst,
                            src_pregs: tuple[int, ...],
                            fetch: int) -> ARVIRequest:
        ddt = self.ddt
        tokens = ddt.chain_tokens(*src_pregs)
        regset = self.chains.extract(tokens, branch_srcs=src_pregs)
        mode = self.value_mode
        views = []
        preg_pending = self._preg_pending
        logical_id = self.shadow_map.logical_id
        shadow_read = self.shadow_values.read
        value_mask = (1 << self.shadow_values.value_bits) - 1
        is_perfect = mode is ValueMode.PERFECT
        is_load_back = mode is ValueMode.LOAD_BACK
        for preg in sorted(regset):
            if not preg_pending[preg]:
                views.append(RegisterView(
                    preg=preg, logical=logical_id(preg),
                    available=True, value=shadow_read(preg)))
                continue
            if is_perfect or (
                    is_load_back
                    and self._preg_is_load[preg]
                    and self._preg_hoist_avail[preg] <= fetch):
                views.append(RegisterView(
                    preg=preg, logical=logical_id(preg),
                    available=True,
                    value=self._preg_value[preg] & value_mask))
            else:
                views.append(RegisterView(
                    preg=preg, logical=logical_id(preg),
                    available=False, value=0))
        return ARVIRequest(
            pc=dyn.pc,
            regset=views,
            branch_token=ddt.next_token,
            oldest_chain_token=ddt.oldest_chain_token(*src_pregs),
        )

    def _resolve_branch(self, dyn: DynInst, decision, fetch: int,
                        complete: int, measured: bool,
                        branch_token: int) -> bool:
        taken = bool(dyn.taken)
        final_correct = decision.final_pred == taken
        l1_correct = decision.l1_pred == taken

        if not final_correct:
            # Full misprediction: fetch restarts after the branch executes.
            self._fetch_barrier = max(
                self._fetch_barrier, complete + _REDIRECT_LATENCY)
            if self.recovery is not None:
                # Materialize the wrong path fetched in the branch shadow,
                # then squash it (wrongpath mode; runs during warmup too —
                # pollution is a state effect, like cache training).
                self._run_wrong_path(dyn, decision, fetch, complete,
                                     branch_token)
        elif decision.override:
            # Correct override: the wrong-path fetches since the branch are
            # squashed when the level-2 prediction arrives.
            self._fetch_barrier = max(
                self._fetch_barrier, fetch + self.predictor.latency + 1)

        self.predictor.train(dyn.pc, decision, taken)

        if measured:
            result = self.result
            result.cond_branches += 1
            if final_correct:
                result.final_correct += 1
            if l1_correct:
                result.l1_correct += 1
            if decision.override:
                result.overrides += 1
                if final_correct and not l1_correct:
                    result.overrides_helpful += 1
                elif l1_correct and not final_correct:
                    result.overrides_harmful += 1
            if decision.used_l2:
                result.l2_used += 1
            if decision.arvi is not None:
                if decision.arvi.is_load_branch:
                    result.load.record(final_correct)
                else:
                    result.calculated.record(final_correct)
        return not final_correct

    # -- wrong-path speculation (DESIGN.md §2.2-§2.3) ---------------------------------

    def _wrong_path_predict(self, pc: int) -> bool:
        """Steer wrong-path fetch at a speculative branch.

        The level-1 predictor decides (the frontend never waits for level
        2), and its predicted outcome is shifted into the speculative
        histories — the corruption the checkpoint restore later repairs.
        """
        taken = bool(self.predictor.level1.predict(pc))
        self.predictor.speculate(pc, taken)
        return taken

    def _run_wrong_path(self, dyn: DynInst, decision, fetch: int,
                        complete: int, branch_token: int) -> None:
        """One wrong-path episode: checkpoint, fetch+rename+pollute, squash.

        The machine fetched down the predicted direction from the branch's
        fetch cycle until resolution, so the episode budget is fetch
        bandwidth x resolve delay (capped by ``wrongpath_fetch_limit`` and
        by DDT/rename capacity).  Wrong-path instructions rename into the
        DDT, touch the I-side for every new fetch line and the D-side for
        every load; at the end the recovery manager rolls everything back
        to the checkpoint via ``rollback_to``.
        """
        config = self.config
        resolve_delay = complete + _REDIRECT_LATENCY - fetch
        budget = min(resolve_delay * config.fetch_width,
                     config.wrongpath_fetch_limit)
        if budget <= 0:
            return
        checkpoint = self.recovery.capture(self, branch_token)
        # The wrong path starts at the *predicted* target: the taken
        # target when the machine guessed taken, else the fall-through.
        wrong_target = dyn.inst.target if decision.final_pred else dyn.pc + 1
        core = WrongPathCore(self.program, self.core.registers,
                             self.core.memory, wrong_target,
                             self._wrong_path_predict)
        result = self.result
        memory = self.memory
        rename = self.rename
        ddt = self.ddt
        decoded = self._decoded
        fetched = 0
        while fetched < budget and ddt.in_flight < config.rob_entries:
            wp = core.step()
            if wp is None:
                break
            wd: DecodedInst = decoded[wp.pc]
            needs_dest = wd.needs_dest
            if needs_dest and rename.free_count == 0:
                break  # frontend stalls on the free list until the squash
            fetched += 1
            # I-side pollution: every new fetch line is a real access.
            line = wd.byte_pc & self._line_mask
            if line != self._last_fetch_line:
                self._last_fetch_line = line
                memory.instruction_latency(wd.byte_pc, wrong_path=True)
            src_pregs = rename.lookup_many(wd.sources)
            dest_preg = None
            if needs_dest:
                dest_preg, _displaced = rename.rename_dest(wd.rd)
                checkpoint.wrong_path_pregs.append(dest_preg)
                self.shadow_map.record(dest_preg, wd.rd)
            token = ddt.allocate(dest_preg, src_pregs)
            self.chains.insert(token, dest_preg, src_pregs,
                               is_load=wd.is_load)
            if wp.is_load and wp.addr is not None:
                # D-side pollution: the speculative load really fills.
                memory.data_latency(wp.addr, wrong_path=True)
                result.wrong_path_loads += 1
            elif wp.is_store:
                # Stores wait in the LSQ and never reach memory.
                result.wrong_path_stores += 1
            elif wp.is_cond_branch:
                result.wrong_path_branches += 1
        result.wrong_path_instructions += fetched
        self.recovery.restore(self, checkpoint)

    # -- DDT retirement -----------------------------------------------------------------

    def _retire_until(self, cycle: int) -> None:
        """Commit DDT entries whose commit cycle has passed."""
        queue = self._retire_queue
        commit_oldest = self.ddt.commit_oldest
        discard = self.chains.discard
        shadow_write = self.shadow_values.write
        preg_pending = self._preg_pending
        release = self.rename.release
        popleft = queue.popleft
        while queue and queue[0][_RETIRE_COMMIT] <= cycle:
            token, dest, value, _commit, displaced = popleft()
            commit_oldest()
            discard(token)
            if dest is not None:
                shadow_write(dest, value)
                preg_pending[dest] = False
            if displaced is not None:
                release(displaced)


# -- convenience constructors ------------------------------------------------------


def build_predictor(kind: LevelTwoKind, config: MachineConfig,
                    arvi_config: ARVIConfig | None = None) -> TwoLevelPredictor:
    """Assemble the paper's predictor configurations."""
    latencies = config.predictor_latencies
    if kind is LevelTwoKind.HYBRID:
        return TwoLevelPredictor(
            level1_gskew(), kind, level2_hybrid=level2_gskew(),
            latency=latencies.level2_hybrid)
    if kind is LevelTwoKind.ARVI:
        return TwoLevelPredictor(
            level1_gskew(), kind,
            arvi=ARVIPredictor(arvi_config or ARVIConfig()),
            confidence=ConfidenceEstimator(),
            latency=latencies.level2_arvi)
    return TwoLevelPredictor(level1_gskew(), LevelTwoKind.NONE)


def simulate(program: Program, config: MachineConfig,
             kind: LevelTwoKind = LevelTwoKind.HYBRID,
             *, value_mode: ValueMode = ValueMode.CURRENT,
             warmup_instructions: int = 0,
             max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
             arvi_config: ARVIConfig | None = None,
             observers: list[Observer] | None = None,
             ddt_cross_check: bool = False,
             core: FunctionalCore | None = None) -> SimulationResult:
    """One-call simulation helper used by examples and experiments."""
    predictor = build_predictor(kind, config, arvi_config)
    engine = PipelineEngine(
        program, config, predictor, value_mode=value_mode,
        warmup_instructions=warmup_instructions, observers=observers,
        ddt_cross_check=ddt_cross_check, core=core)
    return engine.run(max_instructions)
