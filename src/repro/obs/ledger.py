"""Run-ledger lines: event schema, validation, shard merging, span trees.

One telemetry *run* produces a directory (DESIGN.md §11):

* ``events.jsonl`` — the parent process's live event stream (appended a
  line at a time, flushed per line, so ``python -m repro.obs tail`` can
  follow a run in flight);
* ``shards/*.jsonl`` — one stream per worker process (pool workers fork
  into the run directory; queue workers write into the broker directory
  and the scheduler adopts their shards before the broker is torn down);
* ``ledger.jsonl`` — written **atomically at run close**: every stream
  merged and totally ordered by ``(ts, emitter, seq)``.  A reader either
  sees no ledger (run still live / crashed before close) or a complete
  one, never a torn merge;
* ``metrics.json`` / ``metrics.prom`` — the final metrics snapshot as a
  JSON block and a Prometheus text exposition.

Every line is one JSON object validated by :func:`validate_event`; the
schema is deliberately flat so lines grep well and any JSONL tool can
consume them.  Span events (``span_start`` / ``span_end``) carry
globally unique ids (``emitter#n``) and explicit parent ids — including
across process boundaries, because parents ship their current span id to
workers — so :func:`build_span_tree` reconstructs the full
run → plan → batch → point → phase hierarchy from a merged ledger.  A
``span_start`` with no matching ``span_end`` is how a crashed worker
looks: the tree keeps it, flagged ``closed=False``.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field

#: Versions the per-line event schema; bump when fields change meaning.
EVENT_SCHEMA_VERSION = 1

#: The closed set of line types.
EVENT_TYPES = ("span_start", "span_end", "event", "metrics")

#: Span/event kinds with reserved meaning to the CLI renderer.  ``kind``
#: is open-ended — unknown kinds validate fine — but these are the ones
#: the stack emits and the summary view groups by.
KNOWN_KINDS = (
    "run", "plan", "batch", "point", "phase", "cache", "trace",
    "queue", "lease", "worker", "interval", "metrics", "error",
    "fault", "backend", "view",
)


def _fsync_enabled() -> bool:
    """Mirrors :func:`repro.faults.fsio.fsync_enabled` (same knob)."""
    raw = os.environ.get("REPRO_FSYNC")
    if raw is None:
        return True
    return raw.strip().lower() not in ("", "0", "false", "no", "off")


class LedgerError(RuntimeError):
    """A ledger file or line is malformed."""


def validate_event(record: object) -> list[str]:
    """Schema-check one decoded ledger line; returns human errors."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"line is {type(record).__name__}, not an object"]
    if record.get("v") != EVENT_SCHEMA_VERSION:
        errors.append(f"v is {record.get('v')!r}, "
                      f"expected {EVENT_SCHEMA_VERSION}")
    event = record.get("event")
    if event not in EVENT_TYPES:
        errors.append(f"event is {event!r}, expected one of {EVENT_TYPES}")
    for key, types in (("ts", (int, float)), ("run", (str,)),
                       ("emitter", (str,)), ("seq", (int,)),
                       ("name", (str,)), ("kind", (str,))):
        value = record.get(key)
        if not isinstance(value, types) or isinstance(value, bool):
            errors.append(f"{key} is {value!r}, expected {types[0].__name__}")
    if isinstance(record.get("seq"), int) and record["seq"] < 0:
        errors.append(f"seq is {record['seq']}, expected >= 0")
    if event in ("span_start", "span_end"):
        if not isinstance(record.get("span"), str) or not record["span"]:
            errors.append("span events need a non-empty 'span' id")
        parent = record.get("parent")
        if parent is not None and not isinstance(parent, str):
            errors.append(f"parent is {parent!r}, expected str or null")
    if event == "span_end":
        dur = record.get("dur")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                or dur < 0:
            errors.append(f"span_end dur is {dur!r}, expected number >= 0")
    if event == "metrics" and not isinstance(record.get("metrics"), dict):
        errors.append("metrics event needs a 'metrics' object")
    attrs = record.get("attrs")
    if attrs is not None and not isinstance(attrs, dict):
        errors.append(f"attrs is {type(attrs).__name__}, expected object")
    return errors


def iter_lines(path: str | os.PathLike):
    """Yield ``(line_number, raw_line, record_or_None, decode_error)``."""
    with open(path, "r", encoding="utf-8") as handle:
        for number, raw in enumerate(handle, start=1):
            raw = raw.rstrip("\n")
            if not raw.strip():
                continue
            try:
                yield number, raw, json.loads(raw), None
            except ValueError as exc:
                yield number, raw, None, str(exc)


def read_events(path: str | os.PathLike, *,
                strict: bool = False) -> list[dict]:
    """Parse one JSONL stream; ``strict`` raises on any bad line."""
    events: list[dict] = []
    for number, _raw, record, error in iter_lines(path):
        if error is not None or validate_event(record):
            if strict:
                detail = error or "; ".join(validate_event(record))
                raise LedgerError(f"{path}:{number}: {detail}")
            continue
        events.append(record)
    return events


def sort_key(record: dict):
    return (record.get("ts", 0), record.get("emitter", ""),
            record.get("seq", 0))


def merge_streams(paths, out_path: str | os.PathLike) -> int:
    """Merge event streams into one atomically-visible ordered ledger.

    Unparseable lines are dropped (a crashed worker may leave a torn
    final line; the flight recorder must still close), the merged lines
    are totally ordered by ``(ts, emitter, seq)``, and the output file
    appears via write-to-temp + rename — a concurrent reader never sees
    a partial ledger.  Returns the number of merged events.
    """
    events: list[dict] = []
    for path in paths:
        try:
            events.extend(read_events(path))
        except OSError:
            continue
    events.sort(key=sort_key)
    out_path = pathlib.Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=out_path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for record in events:
                handle.write(json.dumps(record, sort_keys=True,
                                        separators=(",", ":")) + "\n")
            # fsync before rename (REPRO_FSYNC=0 skips) so a host crash
            # cannot surface an empty-but-renamed ledger.  Local helper,
            # not repro.faults.fsio: obs must stay import-cycle-free
            # (faults.injector logs through obs).
            if _fsync_enabled():
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, out_path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(events)


def append_jsonl(path: str | os.PathLike, record: dict) -> None:
    """Append one structured line, flushed immediately (crash-safe)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")) + "\n")
        handle.flush()


# -- span-tree reconstruction ------------------------------------------------


@dataclass
class SpanNode:
    """One reconstructed span: its start record, children and outcome."""

    span_id: str
    start: dict
    end: dict | None = None
    children: list["SpanNode"] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.start.get("name", "?")

    @property
    def kind(self) -> str:
        return self.start.get("kind", "?")

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float | None:
        return self.end.get("dur") if self.end is not None else None

    @property
    def attrs(self) -> dict:
        return self.start.get("attrs") or {}


@dataclass
class SpanTree:
    """A merged ledger reconstructed into forests plus loose events."""

    roots: list[SpanNode]
    nodes: dict[str, SpanNode]
    orphans: list[dict]          # events whose enclosing span never started
    metrics: list[dict]          # metrics-snapshot events, in order

    def walk(self):
        """Depth-first (node, depth) over every root."""
        stack = [(node, 0) for node in reversed(self.roots)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            for child in reversed(node.children):
                stack.append((child, depth + 1))

    def find(self, kind: str) -> list[SpanNode]:
        return [node for node, _ in self.walk() if node.kind == kind]


def build_span_tree(events: list[dict]) -> SpanTree:
    """Reconstruct the span forest from merged (ordered) ledger events.

    Tolerant by construction: an unclosed span (crashed worker) stays in
    the tree with ``closed=False``; a span whose parent id never appears
    becomes a root; instant events attach to their enclosing span when
    it exists and are reported as orphans otherwise.
    """
    nodes: dict[str, SpanNode] = {}
    roots: list[SpanNode] = []
    orphans: list[dict] = []
    metrics: list[dict] = []
    pending_parents: dict[str, list[SpanNode]] = {}

    for record in events:
        event = record.get("event")
        if event == "span_start":
            node = SpanNode(span_id=record["span"], start=record)
            nodes[node.span_id] = node
            parent_id = record.get("parent")
            parent = nodes.get(parent_id) if parent_id else None
            if parent is not None:
                parent.children.append(node)
            elif parent_id:
                # Parent may merge later (shards interleave); park it.
                pending_parents.setdefault(parent_id, []).append(node)
            else:
                roots.append(node)
            for child in pending_parents.pop(node.span_id, ()):
                node.children.append(child)
        elif event == "span_end":
            node = nodes.get(record.get("span", ""))
            if node is not None:
                node.end = record
        elif event == "metrics":
            metrics.append(record)
        else:
            span = record.get("span")
            node = nodes.get(span) if span else None
            if node is not None:
                node.events.append(record)
            else:
                orphans.append(record)

    # Parked children whose parent never appeared become roots.
    for waiting in pending_parents.values():
        roots.extend(waiting)
    return SpanTree(roots=roots, nodes=nodes, orphans=orphans,
                    metrics=metrics)
