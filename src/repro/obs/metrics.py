"""Zero-dependency counters, gauges and histograms (DESIGN.md §11).

A :class:`MetricsRegistry` is a plain in-process accumulator: counters
only go up, gauges hold the last written value, histograms bucket
observations against fixed bounds chosen at first observation.  Metrics
never feed back into a simulation — they are snapshotted into the run
ledger (:meth:`MetricsRegistry.to_dict`) and rendered as a
Prometheus-style text exposition (:func:`render_prometheus`) so any
scrape-shaped tooling can consume them without this repo growing a
dependency.

Labels are low-cardinality key=value pairs (``inc("kernel.fallback",
reason="arvi")``); each distinct label set is its own series, exactly
like the Prometheus data model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default histogram bucket upper bounds: powers of two cover the
#: integer-shaped metrics this repo histograms (DDT chain lengths, queue
#: depths, lease ages in whole seconds) without per-metric tuning.
DEFAULT_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Bucket bounds for durations in seconds.
DURATION_BOUNDS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   30.0, 60.0, 300.0)

_Key = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict | None) -> _Key:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v))
                               for k, v in labels.items())))


@dataclass
class Histogram:
    """Fixed-bound bucketed observations (cumulative, Prometheus-style)."""

    bounds: tuple[float, ...] = DEFAULT_BOUNDS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)  # +Inf bucket

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """In-process metric accumulator; snapshot-only, never read back."""

    def __init__(self) -> None:
        self._counters: dict[_Key, float] = {}
        self._gauges: dict[_Key, float] = {}
        self._histograms: dict[_Key, Histogram] = {}

    # -- write side ----------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels) -> None:
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self._gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float,
                bounds: tuple[float, ...] | None = None, **labels) -> None:
        key = _key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = Histogram(bounds=bounds or DEFAULT_BOUNDS)
            self._histograms[key] = histogram
        histogram.observe(value)

    # -- snapshot side -------------------------------------------------------

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def to_dict(self) -> dict:
        """JSON metrics block: the ledger's ``metrics`` event payload."""

        def series(table: dict) -> list[dict]:
            return [
                {"name": name,
                 **({"labels": dict(labels)} if labels else {}),
                 "value": (value.to_dict() if isinstance(value, Histogram)
                           else value)}
                for (name, labels), value in sorted(table.items())
            ]

        return {
            "counters": series(self._counters),
            "gauges": series(self._gauges),
            "histograms": series(self._histograms),
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`to_dict` snapshot into this one.

        Counters and histogram buckets add, gauges last-write-wins —
        how the parent folds its workers' shard metrics into the run
        totals.
        """
        for entry in snapshot.get("counters", ()):
            self.inc(entry["name"], entry["value"],
                     **entry.get("labels", {}))
        for entry in snapshot.get("gauges", ()):
            self.set_gauge(entry["name"], entry["value"],
                           **entry.get("labels", {}))
        for entry in snapshot.get("histograms", ()):
            data = entry["value"]
            key = _key(entry["name"], entry.get("labels"))
            histogram = self._histograms.get(key)
            if histogram is None or list(histogram.bounds) != data["bounds"]:
                histogram = Histogram(bounds=tuple(data["bounds"]))
                self._histograms[key] = histogram
            histogram.counts = [
                mine + theirs for mine, theirs
                in zip(histogram.counts, data["counts"])]
            histogram.total += data["sum"]
            histogram.count += data["count"]


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    return "".join(out)


def _prom_labels(labels: tuple, extra: str = "") -> str:
    parts = [f'{_prom_name(k)}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry,
                      prefix: str = "repro_") -> str:
    """Prometheus text exposition (format 0.0.4) of one snapshot."""
    lines: list[str] = []
    for (name, labels), value in sorted(registry._counters.items()):
        metric = prefix + _prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{_prom_labels(labels)} {value}")
    for (name, labels), value in sorted(registry._gauges.items()):
        metric = prefix + _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{_prom_labels(labels)} {value}")
    for (name, labels), histogram in sorted(registry._histograms.items()):
        metric = prefix + _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.counts):
            cumulative += count
            le = 'le="%s"' % bound
            lines.append(f"{metric}_bucket{_prom_labels(labels, le)}"
                         f" {cumulative}")
        inf = 'le="+Inf"'
        lines.append(f"{metric}_bucket{_prom_labels(labels, inf)}"
                     f" {histogram.count}")
        lines.append(f"{metric}_sum{_prom_labels(labels)} {histogram.total}")
        lines.append(f"{metric}_count{_prom_labels(labels)} "
                     f"{histogram.count}")
    return "\n".join(lines) + ("\n" if lines else "")
