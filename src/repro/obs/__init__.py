"""Unified structured telemetry: spans, metrics and a live run ledger.

A zero-dependency flight recorder for the whole execution stack
(DESIGN.md §11).  When ``REPRO_OBS=1`` the experiment scheduler opens a
*telemetry run* — a directory under ``REPRO_OBS_DIR`` (default
``benchmarks/results/obs/``) — and every layer appends structured JSONL
events to it:

* **spans** — ``run → plan → batch → point → phase`` (record / lower /
  replay / live), plus queue lifecycle events (submit, lease expiry,
  requeue, retry, worker respawn) with monotonic durations and the
  existing ``trace_source`` / ``kernel_source`` markers as attributes;
* **metrics** — counters, gauges and histograms
  (:mod:`repro.obs.metrics`): cache hit/miss, trace-store warm/cold,
  kernel-fallback reasons, queue depth, lease age, worker restarts —
  snapshotted into the ledger and to ``metrics.json`` /
  ``metrics.prom`` (Prometheus text exposition) at run close;
* **worker shards** — pool and queue workers write their own streams
  (:meth:`Telemetry.fork_shard`, queue workers via the broker
  directory); the parent adopts and merges them into one totally
  ordered ``ledger.jsonl``, written atomically at run close
  (:mod:`repro.obs.ledger`);
* **interval samples** — ``REPRO_OBS_INTERVAL=N`` attaches a read-only
  per-N-cycle sampler to the engine (:mod:`repro.obs.interval`): IPC,
  mispredict rate, ROB occupancy and DDT chain lengths over time.

Telemetry *observes*; it never feeds back into a simulation.  Enabling
``REPRO_OBS`` and interval sampling leaves every ``SimulationResult``
bit-for-bit identical on every backend (enforced by the identity suite
in ``tests/obs/``), and the whole package is excluded from the
result-cache code fingerprint for the same reason.

The instrumentation API is the module itself — every helper no-ops in
nanoseconds when no telemetry run is active, so call sites stay bare::

    from repro import obs

    with obs.span("replay", kind="phase", attrs={"mode": "kernel"}):
        ...
    obs.inc("cache.hit")

``python -m repro.obs`` tails a live run, summarizes a finished one and
validates ledgers against the event schema (:mod:`repro.obs.__main__`).
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import shutil
import time
from typing import Iterator

from repro.obs.ledger import EVENT_SCHEMA_VERSION, merge_streams
from repro.obs.metrics import (
    DURATION_BOUNDS,
    MetricsRegistry,
    render_prometheus,
)

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "Telemetry",
    "activate",
    "close_run",
    "current",
    "enabled",
    "emit",
    "gauge",
    "inc",
    "interval_cycles",
    "obs_root",
    "observe",
    "observe_duration",
    "span",
    "start_run",
    "worker_context",
    "worker_shard",
]

_TRUTHY_OFF = ("", "0", "false", "no", "off")


def enabled() -> bool:
    """``REPRO_OBS`` -> whether the scheduler opens a telemetry run."""
    return os.environ.get("REPRO_OBS", "").strip().lower() not in _TRUTHY_OFF


def interval_cycles() -> int:
    """``REPRO_OBS_INTERVAL`` -> engine sampling period in cycles (0=off).

    ``REPRO_OBS_INTERVAL=1`` (bare "on") selects the default period of
    50_000 cycles; any larger integer is the period itself.
    """
    raw = os.environ.get("REPRO_OBS_INTERVAL", "").strip().lower()
    if raw in _TRUTHY_OFF:
        return 0
    try:
        value = int(raw)
    except ValueError:
        return 0
    if value <= 0:
        return 0
    return 50_000 if value == 1 else value


def obs_root() -> pathlib.Path:
    """Where telemetry runs live (``REPRO_OBS_DIR`` overrides)."""
    override = os.environ.get("REPRO_OBS_DIR")
    if override:
        return pathlib.Path(override)
    root = pathlib.Path(__file__).resolve().parents[3]
    if not (root / "pyproject.toml").is_file():
        root = pathlib.Path.cwd()
    return root / "benchmarks" / "results" / "obs"


class Telemetry:
    """One process's event stream within a telemetry run.

    The parent scheduler owns the *root* instance (its stream is
    ``<run_dir>/events.jsonl`` and it performs the close-time merge);
    worker processes own *shard* instances writing to their own files.
    Every line is flushed as written, so a worker killed mid-batch
    (``os._exit`` included) leaves a readable stream whose unclosed
    spans record exactly where it died.
    """

    def __init__(self, run_id: str, run_dir: str | os.PathLike, *,
                 emitter: str = "parent",
                 path: str | os.PathLike | None = None,
                 root_span: str | None = None) -> None:
        self.run_id = run_id
        self.run_dir = pathlib.Path(run_dir)
        self.emitter = emitter
        self.pid = os.getpid()
        self.metrics = MetricsRegistry()
        self._seq = 0
        self._span_n = 0
        self._stack: list[str | None] = [root_span]
        self._open_spans: dict[str, float] = {}
        self.path = pathlib.Path(path) if path is not None \
            else self.run_dir / "events.jsonl"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self._closed = False

    # -- primitives ----------------------------------------------------------

    def _write(self, record: dict) -> None:
        if self._closed:
            return
        try:
            self._file.write(json.dumps(record, sort_keys=True,
                                        separators=(",", ":")) + "\n")
            self._file.flush()
        except (OSError, ValueError):
            # A torn-down filesystem (temp broker dir removed under a
            # straggling worker) must never take the simulation down.
            self._closed = True

    def _record(self, event: str, name: str, kind: str,
                attrs: dict | None = None, **extra) -> dict:
        record = {
            "v": EVENT_SCHEMA_VERSION,
            "ts": time.time(),
            "run": self.run_id,
            "emitter": self.emitter,
            "seq": self._seq,
            "event": event,
            "name": name,
            "kind": kind,
        }
        self._seq += 1
        if attrs:
            record["attrs"] = attrs
        record.update(extra)
        return record

    # -- spans ---------------------------------------------------------------

    def begin_span(self, name: str, kind: str,
                   attrs: dict | None = None) -> str:
        span_id = f"{self.emitter}#{self._span_n}"
        self._span_n += 1
        self._write(self._record("span_start", name, kind, attrs,
                                 span=span_id, parent=self._stack[-1]))
        self._stack.append(span_id)
        self._open_spans[span_id] = time.perf_counter()
        return span_id

    def end_span(self, span_id: str, attrs: dict | None = None) -> float:
        started = self._open_spans.pop(span_id, None)
        duration = time.perf_counter() - started if started is not None \
            else 0.0
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()
        node = self._stack[-1] if self._stack else None
        record = self._record("span_end", "end", "span", attrs,
                              span=span_id, parent=node,
                              dur=round(duration, 6))
        self._write(record)
        return duration

    @contextlib.contextmanager
    def span(self, name: str, kind: str = "span",
             attrs: dict | None = None) -> Iterator[str]:
        span_id = self.begin_span(name, kind, attrs)
        try:
            yield span_id
        except BaseException as exc:
            self.end_span(span_id, attrs={
                "error": f"{type(exc).__name__}: {exc}"[:200]})
            raise
        else:
            self.end_span(span_id)

    def emit(self, name: str, kind: str = "event",
             attrs: dict | None = None) -> None:
        self._write(self._record("event", name, kind, attrs,
                                 span=self._stack[-1]))

    # -- metrics -------------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels) -> None:
        self.metrics.inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        self.metrics.set_gauge(name, value, **labels)

    def observe(self, name: str, value: float,
                bounds: tuple[float, ...] | None = None, **labels) -> None:
        self.metrics.observe(name, value, bounds=bounds, **labels)

    # -- cross-process plumbing ----------------------------------------------

    def context(self) -> dict:
        """What a worker needs to join this run's span tree."""
        return {"run": self.run_id, "parent": self._stack[-1],
                "dir": str(self.run_dir)}

    def fork_shard(self, context: dict | None = None) -> "Telemetry":
        """A shard stream for a worker process of this run.

        Call in the *worker* (after fork/spawn): the shard writes to
        ``<run_dir>/shards/worker-<pid>.jsonl`` and roots its spans at
        the parent span carried by ``context`` (the scheduler's batch
        submission context), so the merged ledger reconstructs one tree.
        """
        context = context or self.context()
        run_dir = pathlib.Path(context.get("dir", self.run_dir))
        emitter = f"worker-{os.getpid()}"
        return Telemetry(
            context.get("run", self.run_id), run_dir, emitter=emitter,
            path=run_dir / "shards" / f"{emitter}.jsonl",
            root_span=context.get("parent"))

    def adopt_shard(self, path: str | os.PathLike) -> None:
        """Copy a worker's shard file into this run (pre-merge).

        Queue workers write shards into the *broker* directory (the only
        filesystem guaranteed to be shared); the scheduler adopts them
        before the broker is torn down so the close-time merge sees
        them.
        """
        path = pathlib.Path(path)
        shard_dir = self.run_dir / "shards"
        shard_dir.mkdir(parents=True, exist_ok=True)
        target = shard_dir / path.name
        stem, suffix = path.stem, path.suffix
        n = 0
        while target.exists():
            n += 1
            target = shard_dir / f"{stem}-{n}{suffix}"
        try:
            shutil.copyfile(path, target)
        except OSError:
            pass  # a vanished shard loses events, never results

    # -- lifecycle -----------------------------------------------------------

    def snapshot_metrics(self) -> dict:
        return self.metrics.to_dict()

    def snapshot_event(self) -> None:
        """Write a cumulative metrics-snapshot line to this stream.

        Shards call this after each batch/job so a later crash still
        leaves their counters recoverable; the close-time merge folds
        only each stream's *last* snapshot (they are cumulative).
        """
        self._write(self._record("metrics", "snapshot", "metrics",
                                 metrics=self.snapshot_metrics()))

    def close(self, *, merge: bool = True) -> pathlib.Path | None:
        """Flush, snapshot metrics, merge shards, write the final ledger.

        Shard instances call ``close(merge=False)`` — they just emit
        their metrics snapshot and close their stream.  The root
        instance folds every shard's snapshot into the run totals,
        writes ``metrics.json`` + ``metrics.prom``, and produces the
        atomically-visible ``ledger.jsonl``.  Returns the ledger path
        (root) or None (shard).
        """
        if self._closed:
            return None
        self.snapshot_event()
        self._file.close()
        self._closed = True
        if not merge:
            return None
        streams = [self.path]
        shard_dir = self.run_dir / "shards"
        if shard_dir.is_dir():
            streams.extend(sorted(shard_dir.glob("*.jsonl")))
        # Fold each shard's *last* metrics snapshot (they are cumulative
        # per stream) into the run totals.
        from repro.obs.ledger import read_events
        for stream in streams[1:]:
            try:
                last = None
                for record in read_events(stream):
                    if record.get("event") == "metrics":
                        last = record
                if last is not None:
                    self.metrics.merge(last.get("metrics", {}))
            except OSError:
                continue
        ledger = self.run_dir / "ledger.jsonl"
        merge_streams(streams, ledger)
        try:
            (self.run_dir / "metrics.json").write_text(
                json.dumps(self.metrics.to_dict(), indent=2) + "\n")
            (self.run_dir / "metrics.prom").write_text(
                render_prometheus(self.metrics))
        except OSError:
            pass
        return ledger


# -- module-level current run -------------------------------------------------

_current: Telemetry | None = None
_run_counter = 0


def current() -> Telemetry | None:
    """The active telemetry for *this process*, or None.

    An instance inherited across ``fork`` is the parent's — writing to
    its stream would interleave two processes' sequence numbers — so it
    is invisible here; workers join explicitly via :func:`activate` with
    a :meth:`Telemetry.fork_shard` instance.
    """
    if _current is not None and _current.pid == os.getpid():
        return _current
    return None


def start_run(label: str | None = None,
              root: str | os.PathLike | None = None) -> Telemetry:
    """Open a telemetry run and make it current; caller must close it.

    The run directory is ``<obs_root>/<run_id>/``; the root ``run`` span
    is opened immediately and closed by :func:`close_run`.
    """
    global _current, _run_counter
    _run_counter += 1
    stamp = time.strftime("%Y%m%d-%H%M%S")
    run_id = f"run-{stamp}-{os.getpid()}-{_run_counter}"
    if label:
        run_id += f"-{label}"
    run_dir = pathlib.Path(root) if root is not None else obs_root()
    telemetry = Telemetry(run_id, run_dir / run_id)
    telemetry.begin_span("run", "run", attrs={"label": label})
    _current = telemetry
    return telemetry


def close_run(telemetry: Telemetry) -> pathlib.Path | None:
    """Close a :func:`start_run` telemetry: end the run span and merge."""
    global _current
    for span_id in list(reversed(telemetry._stack)):
        if span_id is not None and span_id in telemetry._open_spans:
            telemetry.end_span(span_id)
    ledger = telemetry.close()
    if _current is telemetry:
        _current = None
    return ledger


@contextlib.contextmanager
def activate(telemetry: Telemetry | None) -> Iterator[Telemetry | None]:
    """Make ``telemetry`` current for this process (worker-side)."""
    global _current
    previous = current()
    if telemetry is not None:
        _current = telemetry
    try:
        yield telemetry
    finally:
        _current = previous


def worker_context() -> dict | None:
    """The current run's :meth:`Telemetry.context`, for shipping."""
    telemetry = current()
    return telemetry.context() if telemetry is not None else None


_shards: dict[tuple[str, str, int], Telemetry] = {}


def worker_shard(context: dict | None,
                 shard_dir: str | os.PathLike | None = None,
                 ) -> Telemetry | None:
    """This worker process's shard stream for a parent's run, cached.

    ``context`` is a shipped :meth:`Telemetry.context`; ``shard_dir``
    overrides where the shard file lives (queue workers write into the
    broker directory — the only filesystem guaranteed to be shared with
    the scheduler, which adopts the shards before broker teardown).
    One instance per (run, directory, pid) is reused across batches so
    sequence numbers stay monotone and metrics stay cumulative; the
    stream lives until process exit (every line is flushed, so even an
    ``os._exit`` crash leaves it readable).  Returns None when the
    context is unusable — telemetry must never fail a simulation.
    """
    if not isinstance(context, dict) or not context.get("run"):
        return None
    base = pathlib.Path(shard_dir) if shard_dir is not None \
        else pathlib.Path(context.get("dir", "")) / "shards"
    key = (str(context["run"]), str(base), os.getpid())
    shard = _shards.get(key)
    if shard is not None and not shard._closed:
        return shard
    emitter = f"worker-{os.getpid()}"
    parent = context.get("parent")
    try:
        shard = Telemetry(
            str(context["run"]), pathlib.Path(context.get("dir", base)),
            emitter=emitter, path=base / f"{emitter}.jsonl",
            root_span=parent if isinstance(parent, str) else None)
    except OSError:
        return None
    _shards[key] = shard
    return shard


# -- no-op-when-inactive instrumentation helpers ------------------------------

_NULL_SPAN = contextlib.nullcontext()


def span(name: str, kind: str = "span", attrs: dict | None = None):
    telemetry = current()
    if telemetry is None:
        return _NULL_SPAN
    return telemetry.span(name, kind, attrs)


def emit(name: str, kind: str = "event", attrs: dict | None = None) -> None:
    telemetry = current()
    if telemetry is not None:
        telemetry.emit(name, kind, attrs)


def inc(name: str, value: float = 1, **labels) -> None:
    telemetry = current()
    if telemetry is not None:
        telemetry.inc(name, value, **labels)


def gauge(name: str, value: float, **labels) -> None:
    telemetry = current()
    if telemetry is not None:
        telemetry.gauge(name, value, **labels)


def observe(name: str, value: float,
            bounds: tuple[float, ...] | None = None, **labels) -> None:
    telemetry = current()
    if telemetry is not None:
        telemetry.observe(name, value, bounds=bounds, **labels)


def observe_duration(name: str, seconds: float, **labels) -> None:
    """Histogram a wall-clock duration with duration-shaped buckets."""
    observe(name, seconds, bounds=DURATION_BOUNDS, **labels)
