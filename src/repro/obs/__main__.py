"""Run-ledger CLI: ``python -m repro.obs [summary|tail|validate] [path]``.

* ``summary`` (default) — render a finished run: the reconstructed
  run → plan → batch → point → phase span tree (crashed/unclosed spans
  flagged), per-phase timing breakdown, queue lifecycle events
  (lease expiries, requeues, respawns) and the metrics snapshot.
* ``tail`` — follow a *live* run: stream new events from the parent's
  ``events.jsonl`` and every worker shard as they are written, with a
  one-line grid progress / per-worker status header per refresh.
* ``validate`` — check every line of a ledger (or a whole run
  directory) against the event schema; exit 1 on any violation.  CI
  runs this over the queue-smoke ledger artifact.
* ``deadletter`` — list quarantined poison points (grid points that
  failed all their attempts; DESIGN.md §12): point identity, final
  error, and the full attempt history.  ``path`` is the deadletter
  directory (default ``REPRO_DEADLETTER_DIR`` /
  ``benchmarks/results/deadletter/``).

``path`` may be a run directory, a ledger file, or an observability
root (``REPRO_OBS_DIR``) — the newest run is picked automatically when
a root or nothing is given.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.obs import obs_root
from repro.obs.ledger import (
    SpanNode,
    SpanTree,
    build_span_tree,
    iter_lines,
    read_events,
    sort_key,
    validate_event,
)


def _resolve_run(path: str | None) -> pathlib.Path:
    """Turn the CLI path argument into a run directory or ledger file."""
    candidate = pathlib.Path(path) if path else obs_root()
    if candidate.is_file():
        return candidate
    if candidate.is_dir():
        if (candidate / "events.jsonl").exists() \
                or (candidate / "ledger.jsonl").exists():
            return candidate
        runs = sorted((entry for entry in candidate.iterdir()
                       if entry.is_dir() and entry.name.startswith("run-")),
                      key=lambda entry: entry.name)
        if runs:
            return runs[-1]
    raise SystemExit(f"no telemetry run found at {candidate}")


def _ledger_streams(run: pathlib.Path) -> list[pathlib.Path]:
    """The event streams of one run, merged-ledger preferred."""
    if run.is_file():
        return [run]
    ledger = run / "ledger.jsonl"
    if ledger.exists():
        return [ledger]
    streams = []
    if (run / "events.jsonl").exists():
        streams.append(run / "events.jsonl")
    shard_dir = run / "shards"
    if shard_dir.is_dir():
        streams.extend(sorted(shard_dir.glob("*.jsonl")))
    return streams


def _load_events(run: pathlib.Path) -> list[dict]:
    events: list[dict] = []
    for stream in _ledger_streams(run):
        events.extend(read_events(stream))
    events.sort(key=sort_key)
    return events


# -- summary ------------------------------------------------------------------

_TREE_EVENT_KINDS = ("lease", "queue", "worker", "error")


def _format_span(node: SpanNode) -> str:
    attrs = node.attrs
    bits = [node.name]
    label = {
        "run": lambda: attrs.get("label"),
        "plan": lambda: f"{attrs.get('points', '?')} points",
        "batch": lambda: " ".join(filter(None, (
            str(attrs.get("batch_id", "")),
            f"{attrs.get('points', '?')}pts",
            attrs.get("benchmark", ""),
            f"attempt {attrs['attempt']}" if attrs.get("attempt") else "",
            f"worker {attrs['worker']}" if attrs.get("worker") else ""))),
        "point": lambda: " ".join(filter(None, (
            attrs.get("benchmark", ""), attrs.get("configuration", ""),
            f"d{attrs['depth']}" if attrs.get("depth") else "",
            attrs.get("speculation", "")))),
        "phase": lambda: attrs.get("mode") or attrs.get("phase"),
    }.get(node.kind, lambda: None)()
    if label:
        bits.append(f"[{label}]")
    if node.closed:
        bits.append(f"{node.duration:.3f}s")
        error = (node.end.get("attrs") or {}).get("error")
        if error:
            bits.append(f"ERROR: {error}")
    else:
        bits.append("UNCLOSED (crashed or still running)")
    return " ".join(bits)


def _phase_breakdown(tree: SpanTree) -> dict[str, tuple[int, float]]:
    phases: dict[str, tuple[int, float]] = {}
    for node in tree.find("phase"):
        label = node.attrs.get("phase") or node.name
        count, total = phases.get(label, (0, 0.0))
        phases[label] = (count + 1, total + (node.duration or 0.0))
    return phases


def summary(run: pathlib.Path, echo=print) -> int:
    events = _load_events(run)
    if not events:
        echo(f"{run}: no events")
        return 1
    tree = build_span_tree(events)
    echo(f"run: {events[0].get('run')}  ({len(events)} events, "
         f"{len(tree.nodes)} spans)")
    echo("")
    for node, depth in tree.walk():
        echo("  " * depth + "- " + _format_span(node))
        for event in node.events:
            if event.get("kind") in _TREE_EVENT_KINDS:
                attrs = event.get("attrs") or {}
                detail = " ".join(f"{k}={v}" for k, v in attrs.items())
                echo("  " * (depth + 1) + f"* {event.get('name')} {detail}")
    unclosed = [node for node in tree.nodes.values() if not node.closed]
    if unclosed:
        echo("")
        echo(f"unclosed spans: {len(unclosed)} "
             "(crashed workers or a live run)")
    phases = _phase_breakdown(tree)
    if phases:
        echo("")
        echo("phase timing:")
        for label, (count, total) in sorted(phases.items()):
            echo(f"  {label:<12} {count:>4} span(s) {total:>9.3f}s total "
                 f"{total / count:>8.4f}s avg")
    if tree.metrics:
        snapshot = tree.metrics[-1].get("metrics", {})
        counters = snapshot.get("counters", [])
        if counters:
            echo("")
            echo("counters:")
            for entry in counters:
                labels = entry.get("labels")
                suffix = f" {labels}" if labels else ""
                echo(f"  {entry['name']}{suffix} = {entry['value']}")
    return 0


# -- tail ---------------------------------------------------------------------


def _live_streams(run: pathlib.Path) -> list[pathlib.Path]:
    streams = []
    if run.is_file():
        return [run]
    for name in ("events.jsonl", "ledger.jsonl"):
        if (run / name).exists():
            streams.append(run / name)
            break
    shard_dir = run / "shards"
    if shard_dir.is_dir():
        streams.extend(sorted(shard_dir.glob("*.jsonl")))
    return streams


def _format_line(record: dict) -> str:
    stamp = time.strftime("%H:%M:%S", time.localtime(record.get("ts", 0)))
    attrs = record.get("attrs") or {}
    detail = " ".join(f"{k}={v}" for k, v in attrs.items())
    dur = record.get("dur")
    dur_text = f" ({dur:.3f}s)" if isinstance(dur, (int, float)) else ""
    return (f"{stamp} {record.get('emitter', '?'):<14} "
            f"{record.get('event', '?'):<10} "
            f"{record.get('kind', '?')}/{record.get('name', '?')}"
            f"{dur_text} {detail}".rstrip())


def tail(run: pathlib.Path, *, follow: bool = True, poll: float = 0.5,
         echo=print, max_polls: int | None = None) -> int:
    """Stream events from a live run's streams (parent + shards)."""
    offsets: dict[pathlib.Path, int] = {}
    polls = 0
    echo(f"tailing {run}  (ctrl-c to stop)")
    while True:
        progressed = False
        for stream in _live_streams(run):
            offset = offsets.get(stream, 0)
            try:
                with open(stream, "r", encoding="utf-8") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
                    offsets[stream] = offset + len(chunk)
            except OSError:
                continue
            for raw in chunk.splitlines():
                if not raw.strip():
                    continue
                try:
                    record = json.loads(raw)
                except ValueError:
                    continue
                progressed = True
                echo(_format_line(record))
        if not follow:
            return 0
        polls += 1
        if max_polls is not None and polls >= max_polls:
            return 0
        if not progressed:
            time.sleep(poll)


# -- validate -----------------------------------------------------------------


def validate(run: pathlib.Path, echo=print) -> int:
    """Schema-check every line of every stream; exit 1 on violations."""
    streams = _ledger_streams(run)
    if not streams:
        echo(f"{run}: no ledger streams found")
        return 1
    bad = total = 0
    for stream in streams:
        for number, _raw, record, error in iter_lines(stream):
            total += 1
            problems = [error] if error is not None \
                else validate_event(record)
            if problems:
                bad += 1
                echo(f"{stream}:{number}: {'; '.join(problems)}")
    echo(f"{total} line(s) across {len(streams)} stream(s): "
         + ("all valid" if bad == 0 else f"{bad} invalid"))
    return 0 if bad == 0 else 1


def deadletter(path: str | None, echo=print) -> int:
    """List quarantined points with their attempt histories."""
    from repro.faults.policy import DeadletterStore, default_deadletter_dir

    directory = pathlib.Path(path) if path else default_deadletter_dir()
    store = DeadletterStore(directory)
    entries = store.entries()
    if not entries:
        echo(f"{directory}: no quarantined points")
        return 0
    echo(f"{directory}: {len(entries)} quarantined point(s)")
    for entry in entries:
        point = entry.get("point") or {}
        error = entry.get("error") or {}
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(entry.get("ts", 0)))
        label = " ".join(str(part) for part in (
            point.get("benchmark"), point.get("configuration"),
            f"d{point.get('pipeline_depth')}"
            if point.get("pipeline_depth") is not None else None,
            point.get("speculation")) if part is not None)
        echo("")
        echo(f"- {label or '(unknown point)'}  [{stamp}]")
        if entry.get("key"):
            echo(f"  key: {entry['key']}")
        echo(f"  error: {error.get('type', 'Error')}: "
             f"{error.get('message', '')}")
        for line in entry.get("history") or ():
            echo(f"  {line}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect telemetry run ledgers (REPRO_OBS=1).")
    parser.add_argument("command", nargs="?", default="summary",
                        choices=("summary", "tail", "validate",
                                 "deadletter"),
                        help="summary (default) | tail | validate | "
                             "deadletter")
    parser.add_argument("path", nargs="?", default=None,
                        help="run directory, ledger file, or obs root "
                             "(default: newest run under REPRO_OBS_DIR); "
                             "for deadletter: the quarantine directory")
    parser.add_argument("--no-follow", action="store_true",
                        help="tail: print what exists and exit")
    parser.add_argument("--poll", type=float, default=0.5,
                        help="tail: seconds between polls (default 0.5)")
    args = parser.parse_args(argv)
    if args.command == "deadletter":
        # Deadletter directories are not telemetry runs; resolve apart.
        return deadletter(args.path)
    run = _resolve_run(args.path)
    if args.command == "summary":
        return summary(run)
    if args.command == "tail":
        try:
            return tail(run, follow=not args.no_follow, poll=args.poll)
        except KeyboardInterrupt:
            return 0
    return validate(run)


if __name__ == "__main__":
    sys.exit(main())
