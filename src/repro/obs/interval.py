"""Sampled engine-interval telemetry (``REPRO_OBS_INTERVAL``).

An :class:`IntervalSampler` rides inside the engine's fused loop and
takes a snapshot every N *cycles* of simulated time: interval IPC,
interval mispredict rate, ROB occupancy, DDT in-flight count and the
DDT chain length feeding the sampled instruction.  Everything it does
is a **read** — it queries counters the engine already maintains and
the DDT's pure ``chain_length`` popcount — so attaching a sampler
provably cannot perturb a simulation (the identity suite asserts
bit-for-bit equal ``SimulationResult``\\ s with sampling on and off,
and the per-instruction cost when *no* sampler is attached is a single
``is not None`` test).

Samples accumulate in memory; :func:`repro.experiments.runner.
execute_point` flushes them into the run ledger as ``interval`` events
under the point's span after the engine returns, and folds the chain
lengths into the ``engine.ddt_chain_length`` histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class IntervalSample:
    """One per-interval snapshot of the engine's hot state."""

    cycle: int
    instructions: int       # committed so far (stream order)
    ipc: float              # over this interval
    branches: int           # conditional branches this interval (measured)
    mispredicts: int        # final mispredictions this interval (measured)
    rob_occupancy: int      # retirement-window entries in flight
    ddt_in_flight: int      # DDT tokens in flight
    chain_length: int       # DDT chain feeding the sampled instruction

    def to_attrs(self) -> dict:
        return {
            "cycle": self.cycle,
            "instructions": self.instructions,
            "ipc": round(self.ipc, 4),
            "branches": self.branches,
            "mispredicts": self.mispredicts,
            "rob_occupancy": self.rob_occupancy,
            "ddt_in_flight": self.ddt_in_flight,
            "chain_length": self.chain_length,
        }


@dataclass
class IntervalSampler:
    """Collects :class:`IntervalSample`\\ s every ``every`` cycles.

    The engine calls :meth:`record` when the commit cycle crosses the
    next sampling boundary and uses the returned threshold for the next
    check — one integer comparison per instruction between samples.
    """

    every: int
    samples: list[IntervalSample] = field(default_factory=list)
    _last_cycle: int = 0
    _last_seq: int = 0
    _last_branches: int = 0
    _last_correct: int = 0

    def __post_init__(self) -> None:
        self.every = max(1, int(self.every))

    @property
    def first_threshold(self) -> int:
        return self.every

    def record(self, cycle: int, seq: int, rob_occupancy: int,
               ddt, src_pregs: tuple[int, ...],
               cond_branches: int, final_correct: int) -> int:
        """Take one sample; returns the next cycle threshold."""
        d_cycles = cycle - self._last_cycle
        d_insts = seq + 1 - self._last_seq
        d_branches = cond_branches - self._last_branches
        d_correct = final_correct - self._last_correct
        self.samples.append(IntervalSample(
            cycle=cycle,
            instructions=seq + 1,
            ipc=d_insts / d_cycles if d_cycles > 0 else 0.0,
            branches=d_branches,
            mispredicts=d_branches - d_correct,
            rob_occupancy=rob_occupancy,
            ddt_in_flight=ddt.in_flight,
            chain_length=ddt.chain_length(*src_pregs),
        ))
        self._last_cycle = cycle
        self._last_seq = seq + 1
        self._last_branches = cond_branches
        self._last_correct = final_correct
        # Skip intervals with no committed instructions (long stalls):
        # the next boundary is the first multiple of ``every`` beyond
        # the current cycle.
        return cycle - (cycle % self.every) + self.every
