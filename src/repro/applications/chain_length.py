"""Dependence-chain length tracking (paper Section 3, "Dynamic scheduling").

The paper notes that adding a small counter per DDT row yields, cycle by
cycle, the length of the dependence chain feeding each register, and that
a per-instruction count of *trailing dependents* (how many in-flight
instructions depend on a given instruction) supports issue priority,
selective value prediction and criticality estimation.

:class:`TrailingDependentsCounter` maintains exactly that: on every
allocation it increments the counter of each chain member; committed or
squashed instructions drop out.  :class:`ChainLengthObserver` plugs into
the timing engine and records chain-length distributions per instruction
class.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.ddt import FastDDT


class TrailingDependentsCounter:
    """Counts, per in-flight instruction, its current dependents.

    Mirrors the paper's "small counter added to each row" refinement: the
    counters are maintained incrementally as instructions enter the DDT.
    """

    def __init__(self, ddt: FastDDT) -> None:
        self.ddt = ddt
        self._dependents: dict[int, int] = {}

    def on_allocate(self, token: int, dest: int | None,
                    srcs: tuple[int, ...]) -> None:
        """Call right after ``ddt.allocate`` returned ``token``."""
        self._dependents[token] = 0
        if dest is None:
            return
        for member in self.ddt.chain_tokens(dest):
            if member != token and member in self._dependents:
                self._dependents[member] += 1

    def on_retire(self, token: int) -> int:
        """Remove a committed/squashed instruction; returns its count."""
        return self._dependents.pop(token, 0)

    def dependents(self, token: int) -> int:
        return self._dependents.get(token, 0)

    def longest_chains(self, top: int = 8) -> list[tuple[int, int]]:
        """(token, dependents) pairs with the most trailing dependents."""
        ranked = sorted(self._dependents.items(),
                        key=lambda item: item[1], reverse=True)
        return ranked[:top]


@dataclass
class ChainLengthStats:
    histogram: Counter = field(default_factory=Counter)
    load_histogram: Counter = field(default_factory=Counter)
    branch_histogram: Counter = field(default_factory=Counter)
    samples: int = 0

    def record(self, length: int, *, is_load: bool, is_branch: bool) -> None:
        self.samples += 1
        self.histogram[length] += 1
        if is_load:
            self.load_histogram[length] += 1
        if is_branch:
            self.branch_histogram[length] += 1

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(k * v for k, v in self.histogram.items()) / self.samples

    def mean_for(self, histogram: Counter) -> float:
        total = sum(histogram.values())
        if not total:
            return 0.0
        return sum(k * v for k, v in histogram.items()) / total

    def percentile(self, fraction: float) -> int:
        """Chain length at the given cumulative fraction."""
        if not self.samples:
            return 0
        threshold = fraction * self.samples
        running = 0
        for length in sorted(self.histogram):
            running += self.histogram[length]
            if running >= threshold:
                return length
        return max(self.histogram)


class ChainLengthObserver:
    """Engine observer collecting chain-length distributions.

    Attach via ``PipelineEngine(..., observers=[observer])``; the engine
    reports each instruction's source-chain length in its TimingRecord.
    """

    def __init__(self) -> None:
        self.stats = ChainLengthStats()

    def __call__(self, record, dyn) -> None:
        self.stats.record(record.chain_length,
                          is_load=record.is_load,
                          is_branch=record.is_branch)
