"""Selective value prediction (paper Section 3, after Calder et al. [6]).

Calder's heuristic selects for value prediction only instructions with a
long dependence chain waiting on their result, but no hardware mechanism
for measuring that length was described — the paper points out the DDT's
trailing-dependent counters supply it directly.

This module pairs a simple last-value predictor with a DDT-style
selector: instructions are *selected* when their observed trailing-
dependent count exceeds a threshold.  The report compares value
predictability and coverage of selected vs unselected instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import Program
from repro.pipeline.functional import FunctionalCore


class LastValuePredictor:
    """Classic last-value predictor, keyed by instruction PC."""

    def __init__(self) -> None:
        self._last: dict[int, int] = {}
        self.predictions = 0
        self.correct = 0

    def predict_and_train(self, pc: int, value: int) -> bool:
        """Returns True when the previous value recurs."""
        self.predictions += 1
        correct = self._last.get(pc) == value
        if correct:
            self.correct += 1
        self._last[pc] = value
        return correct

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0


@dataclass
class SelectionReport:
    threshold: int
    selected_sites: int = 0
    total_sites: int = 0
    selected_dynamic: int = 0
    total_dynamic: int = 0
    selected_accuracy: float = 0.0
    overall_accuracy: float = 0.0
    site_dependents: dict[int, float] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        if not self.total_dynamic:
            return 0.0
        return self.selected_dynamic / self.total_dynamic


def run_selective_value_prediction(program: Program, *,
                                   threshold: int = 3,
                                   max_instructions: int = 200_000,
                                   window: int = 64) -> SelectionReport:
    """Profile value predictability, selecting long-dependent-chain sites.

    The trailing-dependent count of a producer is approximated over a
    sliding window of the architectural stream: how many of the next
    ``window`` instructions transitively depend on its destination —
    the software analogue of the DDT counter hardware.
    """
    core = FunctionalCore(program)
    stream = list(core.run(max_instructions))

    # Pass 1: trailing dependents within the window, per dynamic producer.
    dependents = [0] * len(stream)
    for start, dyn in enumerate(stream):
        if dyn.rd is None or dyn.rd == 0:
            continue
        tainted = {dyn.rd}
        count = 0
        for follower in stream[start + 1:start + 1 + window]:
            reads = [r for r in (follower.rs1, follower.rs2)
                     if r is not None]
            if any(r in tainted for r in reads):
                count += 1
                if follower.rd is not None and follower.rd != 0:
                    tainted.add(follower.rd)
            elif follower.rd in tainted:
                tainted.discard(follower.rd)  # overwritten, chain cut
        dependents[start] = count

    # Aggregate per static site; select sites above the threshold.
    site_total: dict[int, int] = {}
    site_count: dict[int, int] = {}
    for index, dyn in enumerate(stream):
        if dyn.result is None:
            continue
        site_total[dyn.pc] = site_total.get(dyn.pc, 0) + dependents[index]
        site_count[dyn.pc] = site_count.get(dyn.pc, 0) + 1
    site_mean = {pc: site_total[pc] / site_count[pc] for pc in site_total}
    selected = {pc for pc, mean in site_mean.items() if mean >= threshold}

    # Pass 2: value predictability overall vs selected.
    overall = LastValuePredictor()
    chosen = LastValuePredictor()
    report = SelectionReport(threshold=threshold,
                             selected_sites=len(selected),
                             total_sites=len(site_mean),
                             site_dependents=site_mean)
    for dyn in stream:
        if dyn.result is None:
            continue
        report.total_dynamic += 1
        overall.predict_and_train(dyn.pc, dyn.result)
        if dyn.pc in selected:
            report.selected_dynamic += 1
            chosen.predict_and_train(dyn.pc, dyn.result)
    report.overall_accuracy = overall.accuracy
    report.selected_accuracy = chosen.accuracy
    return report
