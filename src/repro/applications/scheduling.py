"""Chain-length-aware issue scheduling (paper Section 3 application).

The paper proposes prioritizing instruction issue by dependence-chain
properties — e.g. issuing loads with long trailing dependent chains first.
This module provides a compact issue-queue simulator over explicit
dependence DAGs and compares three select policies:

* ``oldest-first``     — classic age-ordered select;
* ``chain-priority``   — most trailing dependents first (DDT counters);
* ``random``           — pathological baseline.

``makespan`` quantifies the effect; on DAGs with skewed dependent counts,
chain-priority beats oldest-first whenever issue bandwidth is scarce.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class DagNode:
    """One instruction in a synthetic dependence DAG."""

    index: int
    deps: tuple[int, ...]
    latency: int = 1


@dataclass
class ScheduleResult:
    policy: str
    makespan: int
    issue_order: list[int] = field(default_factory=list)


def trailing_dependents(nodes: list[DagNode]) -> list[int]:
    """Transitive dependent count per node (what the DDT counters track)."""
    dependents: list[set[int]] = [set() for _ in nodes]
    for node in reversed(nodes):
        for dep in node.deps:
            dependents[dep].add(node.index)
            dependents[dep] |= dependents[node.index]
    return [len(deps) for deps in dependents]


def simulate_issue(nodes: list[DagNode], *, width: int = 2,
                   policy: str = "oldest-first",
                   seed: int = 0) -> ScheduleResult:
    """Cycle-stepped issue simulation with the given select policy."""
    if policy not in ("oldest-first", "chain-priority", "random"):
        raise ValueError(f"unknown policy {policy!r}")
    rng = random.Random(seed)
    priority = trailing_dependents(nodes) if policy == "chain-priority" else None
    finish = [-1] * len(nodes)
    issued = [False] * len(nodes)
    order: list[int] = []
    cycle = 0
    remaining = len(nodes)
    while remaining:
        ready = [
            node.index for node in nodes
            if not issued[node.index] and all(
                finish[dep] >= 0 and finish[dep] <= cycle
                for dep in node.deps)
        ]
        if policy == "chain-priority":
            ready.sort(key=lambda i: (-priority[i], i))
        elif policy == "random":
            rng.shuffle(ready)
        # oldest-first: ready is already in age order.
        for index in ready[:width]:
            issued[index] = True
            finish[index] = cycle + nodes[index].latency
            order.append(index)
            remaining -= 1
        cycle += 1
        if cycle > 100 * len(nodes) + 100:
            raise RuntimeError("scheduling did not converge (cyclic DAG?)")
    return ScheduleResult(policy=policy,
                          makespan=max(finish) if finish else 0,
                          issue_order=order)


def random_dag(size: int, *, seed: int = 0, chain_bias: float = 0.6,
               load_fraction: float = 0.3,
               load_latency: int = 6) -> list[DagNode]:
    """Synthetic DAG mixing long serial chains with parallel work.

    ``chain_bias`` is the probability that a node extends an existing
    chain (serial structure) rather than starting fresh; loads get a
    longer latency, making select order matter.
    """
    rng = random.Random(seed)
    nodes: list[DagNode] = []
    for index in range(size):
        deps: tuple[int, ...] = ()
        if index and rng.random() < chain_bias:
            first = rng.randrange(max(0, index - 8), index)
            deps = (first,)
            if index > 1 and rng.random() < 0.3:
                second = rng.randrange(index)
                if second != first:
                    deps = (first, second)
        latency = load_latency if rng.random() < load_fraction else 1
        nodes.append(DagNode(index=index, deps=deps, latency=latency))
    return nodes


def compare_policies(size: int = 200, *, width: int = 2,
                     seed: int = 0) -> dict[str, int]:
    """Makespans of all three policies on the same DAG."""
    nodes = random_dag(size, seed=seed)
    return {
        policy: simulate_issue(nodes, width=width, policy=policy,
                               seed=seed).makespan
        for policy in ("oldest-first", "chain-priority", "random")
    }
