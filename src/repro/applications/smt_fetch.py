"""SMT fetch policy driven by dependence-chain metrics (paper Section 3).

Tullsen's ICOUNT gives fetch priority to threads with the fewest in-flight
instructions; the paper argues per-thread DDT chain-length averages are a
sharper forward-progress signal.  This module models an SMT front end over
synthetic per-thread instruction streams with explicit dependence
structure and compares:

* ``round-robin`` — baseline;
* ``icount``      — fewest in-flight instructions first;
* ``chain``       — shortest mean dependence chain first (per-thread DDTs).

Throughput (instructions completed per cycle across threads) is the
figure of merit; chain-based fetch beats ICOUNT when thread behaviour is
bimodal (some threads serially dependent, others parallel).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class ThreadModel:
    """Synthetic thread: a stream with a serial-dependence probability.

    ``serialness`` approximates the chain structure the per-thread DDT
    would report: each new instruction extends the thread's current chain
    with this probability, otherwise it starts a fresh chain.
    """

    name: str
    serialness: float
    op_latency: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.serialness <= 1.0:
            raise ValueError("serialness must be within [0, 1]")


@dataclass
class _ThreadState:
    model: ThreadModel
    in_flight: list[int] = field(default_factory=list)  # completion cycles
    chain_depth: int = 0
    chain_lengths: list[int] = field(default_factory=list)
    completed: int = 0

    def mean_chain(self) -> float:
        recent = self.chain_lengths[-32:]
        return sum(recent) / len(recent) if recent else 0.0


@dataclass
class SMTResult:
    policy: str
    cycles: int
    per_thread_completed: dict[str, int]

    @property
    def throughput(self) -> float:
        total = sum(self.per_thread_completed.values())
        return total / self.cycles if self.cycles else 0.0


def simulate_smt(threads: list[ThreadModel], *, cycles: int = 2000,
                 fetch_width: int = 4, window_per_thread: int = 8,
                 select_threads: int = 1,
                 policy: str = "icount", seed: int = 0) -> SMTResult:
    """Fetch-policy simulation; completion is dependence-limited.

    Tullsen-style ``policy.2.W`` selection: each cycle the policy picks
    ``select_threads`` threads *first*, then fetch proceeds only from
    them — slots aimed at a thread whose window turns out to be full are
    lost, which is exactly the waste ICOUNT (and, better, a chain-length
    metric) is designed to avoid.
    """
    if policy not in ("round-robin", "icount", "chain"):
        raise ValueError(f"unknown policy {policy!r}")
    rng = random.Random(seed)
    states = [_ThreadState(model=model) for model in threads]
    rr_cursor = 0

    for cycle in range(cycles):
        # Retire completed instructions.
        for state in states:
            before = len(state.in_flight)
            state.in_flight = [c for c in state.in_flight if c > cycle]
            state.completed += before - len(state.in_flight)

        # Order threads by the selected policy (selection happens before
        # window occupancy of the chosen threads is "known" to fetch).
        if policy == "round-robin":
            ordered = states[rr_cursor:] + states[:rr_cursor]
            rr_cursor = (rr_cursor + 1) % len(states)
        elif policy == "icount":
            ordered = sorted(states, key=lambda s: len(s.in_flight))
        else:
            # chain: refine ICOUNT with the per-thread DDT chain metric —
            # among similarly occupied threads, prefer the one whose
            # chains are short (it will drain its window fastest).
            ordered = sorted(
                states,
                key=lambda s: len(s.in_flight) + 0.75 * s.mean_chain())

        budget = fetch_width
        for state in ordered[:select_threads]:
            if budget == 0:
                break
            room = window_per_thread - len(state.in_flight)
            take = min(budget, max(room, 0))
            budget -= take
            for _ in range(take):
                serial = rng.random() < state.model.serialness
                if serial:
                    state.chain_depth += 1
                else:
                    state.chain_lengths.append(state.chain_depth)
                    state.chain_depth = 0
                # A serially dependent instruction completes after the
                # chain ahead of it; an independent one after its latency.
                delay = state.model.op_latency * (
                    state.chain_depth + 1 if serial else 1)
                state.in_flight.append(cycle + delay)

    return SMTResult(
        policy=policy,
        cycles=cycles,
        per_thread_completed={s.model.name: s.completed for s in states},
    )


def compare_policies(threads: list[ThreadModel] | None = None,
                     *, cycles: int = 2000,
                     seed: int = 0) -> dict[str, float]:
    """Throughput of the three fetch policies on the same thread mix."""
    if threads is None:
        threads = [
            ThreadModel("parallel-a", serialness=0.15),
            ThreadModel("parallel-b", serialness=0.25),
            ThreadModel("serial-a", serialness=0.9),
            ThreadModel("serial-b", serialness=0.8),
        ]
    return {
        policy: simulate_smt(threads, cycles=cycles, policy=policy,
                             seed=seed).throughput
        for policy in ("round-robin", "icount", "chain")
    }
