"""Criticality estimation (paper Section 3, after Srinivasan/Fields/Bodik).

The paper suggests dependence-chain information can make critical-
instruction detection *directed* instead of sampled.  We measure ground
truth from the timing engine — an instruction's **slack** is how long its
completion could be delayed without delaying commit — and evaluate how
well the DDT chain-length signal identifies the low-slack (critical)
population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pipeline.engine import TimingRecord


@dataclass
class CriticalityStats:
    records: int = 0
    critical: int = 0
    flagged: int = 0
    flagged_critical: int = 0

    @property
    def precision(self) -> float:
        return self.flagged_critical / self.flagged if self.flagged else 0.0

    @property
    def recall(self) -> float:
        return self.flagged_critical / self.critical if self.critical else 0.0

    @property
    def base_rate(self) -> float:
        return self.critical / self.records if self.records else 0.0


class CriticalityObserver:
    """Engine observer comparing chain-length flags against slack.

    ``slack_threshold`` defines ground-truth criticality: commit follows
    completion within that many cycles (the instruction is on or near the
    commit-critical path).  ``chain_threshold`` is the DDT-based detector:
    flag instructions whose source dependence chain is at least that long.
    """

    def __init__(self, *, slack_threshold: int = 0,
                 chain_threshold: int = 3) -> None:
        self.slack_threshold = slack_threshold
        self.chain_threshold = chain_threshold
        self.stats = CriticalityStats()
        self._slack_sum = 0

    def __call__(self, record: TimingRecord, dyn) -> None:
        stats = self.stats
        stats.records += 1
        slack = record.commit - record.complete - 1
        self._slack_sum += slack
        is_critical = slack <= self.slack_threshold
        is_flagged = record.chain_length >= self.chain_threshold
        if is_critical:
            stats.critical += 1
        if is_flagged:
            stats.flagged += 1
            if is_critical:
                stats.flagged_critical += 1

    @property
    def mean_slack(self) -> float:
        if not self.stats.records:
            return 0.0
        return self._slack_sum / self.stats.records

    def report(self) -> str:
        stats = self.stats
        return (
            f"instructions={stats.records} critical={stats.critical} "
            f"(base rate {stats.base_rate:.2f}) flagged={stats.flagged} "
            f"precision={stats.precision:.2f} recall={stats.recall:.2f} "
            f"mean slack={self.mean_slack:.1f}"
        )
