"""Branch-decoupled execution chain extraction (paper Section 3).

Branch-decoupled architectures run the instructions leading to a branch on
a separate branch execution unit (BEX) so outcomes are known before the
main pipeline reaches the branch.  Prior work either tagged chains in the
compiler [Farcy et al.] or lacked a hardware chain-discovery mechanism
[Tyagi et al.]; the paper observes the DDT provides the chain directly.

:class:`BexExtractor` is an engine observer that snapshots each branch's
DDT dependence chain and estimates BEX viability: chains that are a small
fraction of the instruction window could run ahead on a BEX unit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.pipeline.engine import TimingRecord


@dataclass
class BexReport:
    branches: int = 0
    chain_histogram: Counter = field(default_factory=Counter)
    decoupleable: int = 0

    def mean_chain_length(self) -> float:
        if not self.branches:
            return 0.0
        total = sum(k * v for k, v in self.chain_histogram.items())
        return total / self.branches

    @property
    def decoupleable_fraction(self) -> float:
        return self.decoupleable / self.branches if self.branches else 0.0


class BexExtractor:
    """Observer estimating how much of the branch stream a BEX could cover.

    A branch is counted *decoupleable* when its dependence chain is no
    longer than ``max_chain`` instructions — short enough for a small BEX
    engine to race ahead of the main pipeline.
    """

    def __init__(self, *, max_chain: int = 8) -> None:
        self.max_chain = max_chain
        self.report = BexReport()

    def __call__(self, record: TimingRecord, dyn) -> None:
        if not record.is_branch:
            return
        report = self.report
        report.branches += 1
        report.chain_histogram[record.chain_length] += 1
        if record.chain_length <= self.max_chain:
            report.decoupleable += 1
