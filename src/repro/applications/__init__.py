"""Applications of on-line dependence tracking (paper Section 3)."""

from repro.applications.chain_length import (
    ChainLengthObserver,
    ChainLengthStats,
    TrailingDependentsCounter,
)
from repro.applications.criticality import CriticalityObserver, CriticalityStats
from repro.applications.decoupled import BexExtractor, BexReport
from repro.applications.scheduling import (
    DagNode,
    ScheduleResult,
    compare_policies,
    random_dag,
    simulate_issue,
    trailing_dependents,
)
from repro.applications.smt_fetch import (
    SMTResult,
    ThreadModel,
    simulate_smt,
)
from repro.applications.value_pred import (
    LastValuePredictor,
    SelectionReport,
    run_selective_value_prediction,
)

__all__ = [
    "BexExtractor",
    "BexReport",
    "ChainLengthObserver",
    "ChainLengthStats",
    "CriticalityObserver",
    "CriticalityStats",
    "DagNode",
    "LastValuePredictor",
    "SMTResult",
    "ScheduleResult",
    "SelectionReport",
    "ThreadModel",
    "TrailingDependentsCounter",
    "compare_policies",
    "random_dag",
    "run_selective_value_prediction",
    "simulate_issue",
    "simulate_smt",
    "trailing_dependents",
]
